/**
 * @file
 * Build-time compiled semantics handlers for concrete replay.
 *
 * tools/semgen loads every instruction row's semantics program (built
 * with the fixed options below, optimizer on), lowers it to a
 * straight-line/branchy C++ function over the ir::ConcreteMemory
 * interface, and emits one handler per unit plus the dispatch table
 * returned by compiled_table() — the WinUAE gencpu shape
 * (table -> generator -> handlers.cpp) applied to IR semantics.
 *
 * A handler is generated from one canonical encoding but serves every
 * encoding with the same *structural shape* (length, prefixes, ModRM,
 * SIB): value immediates and the displacement are parameterized
 * through the param_block loads (SemanticsOptions::generic_params),
 * which the dispatcher writes before calling the handler. The few
 * rows whose builder branches on immediate *values* in C++
 * (compiled_params_ok() == false) compile specialized and only match
 * their canonical values.
 *
 * Staleness guard: semgen stamps compiled_expected_hash() — a hash of
 * every unit's printed program and shape — into the table; the
 * dispatcher re-derives it at first use and refuses a mismatching
 * (stale or corrupt) table with FaultClass::CodegenMismatch.
 */
#ifndef POKEEMU_HIFI_COMPILED_H
#define POKEEMU_HIFI_COMPILED_H

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "arch/decoder.h"
#include "hifi/semantics.h"
#include "ir/eval.h"
#include "timing/cost_model.h"

namespace pokeemu::hifi {

/**
 * One generated handler. Mirrors ir::run_concrete on the unit's
 * program exactly, including RunResult::steps (retired IR statements,
 * not native operations) and the step-limit/assume/halt outcomes.
 */
using CompiledHandler = ir::RunResult (*)(ir::ConcreteMemory &memory,
                                          u64 max_steps);

/** The structural shape a handler was generated from; dispatch
 *  requires an exact match (register numbers and operand forms are
 *  baked into the generated code). */
struct CompiledShape
{
    int table_index = -1;
    u8 length = 0;
    bool lock = false;
    bool rep = false;
    bool repne = false;
    s8 seg_override = -1;
    bool has_modrm = false;
    u8 modrm = 0;
    bool has_sib = false;
    u8 sib = 0;
    /** Immediate/displacement values are parameterized; when false the
     *  canonical imm/disp/imm_sel below must also match exactly. */
    bool params_ok = true;
    u32 imm = 0;
    u32 disp = 0;
    u16 imm_sel = 0;
};

struct CompiledEntry
{
    CompiledShape shape;
    CompiledHandler handler;
};

/** The generated dispatch table (defined by semgen's output). Entries
 *  are grouped by table_index: row r's entries occupy
 *  [row_begin[r], row_begin[r + 1]). */
struct CompiledTable
{
    const CompiledEntry *entries;
    std::size_t num_entries;
    const u32 *row_begin; ///< rows + 1 offsets into entries.
    std::size_t rows;
    u64 semantics_hash; ///< Stamp of compiled_expected_hash().
};

/** Defined in the semgen-generated translation unit. */
const CompiledTable &compiled_table();

/** The generated per-unit cycle-cost table (timing/cost_model.h),
 *  parallel to CompiledTable::entries: costs[i] is the cost semgen
 *  derived from the exact program it compiled into entries[i]. The
 *  triples are folded into compiled_expected_hash(), so a cost table
 *  that disagrees with fresh derivation is refused as stale together
 *  with the handlers. */
struct CompiledCostTable
{
    const timing::UnitCost *costs;
    std::size_t num;
};

/** Defined in the semgen-generated translation unit. */
const CompiledCostTable &compiled_cost_table();

/** Does @p insn match @p shape (see CompiledShape)? */
bool shape_matches(const CompiledShape &shape,
                   const arch::DecodedInsn &insn);

/** Find the handler entry serving @p insn, or nullptr. */
const CompiledEntry *compiled_find(const arch::DecodedInsn &insn);

/**
 * Can this op's immediates be parameterized? False for the rows whose
 * builder branches on immediate values in C++ (int imm8 selects the
 * vector; far jmp/call decompose the selector): those compile
 * specialized to the canonical encoding's values.
 */
bool compiled_params_ok(arch::Op op);

/** The fixed options every compiled unit is built with. The emulator
 *  only dispatches to handlers when its own options agree on the one
 *  behavioral knob (hifi_far_fetch_order). */
SemanticsOptions compiled_build_options(bool params_ok);

/** One buildable unit: a canonical (or memory-form variant) encoding
 *  and its generic program. Order defines handler indices. */
struct CompiledUnit
{
    arch::DecodedInsn insn;
    ir::Program program;
    bool params_ok = true;
    bool variant = false; ///< Alternate operand-form re-encoding.
};

/**
 * The alternate operand-form re-encoding of a ModRM row, when one
 * decodes back to the same row: canonical encodings prefer the
 * [disp32] memory form (mod=0, rm=5), so the variant is the register
 * form (mod=3) — and vice versa for the few register-form canonicals.
 * Replayed boot/test code uses both forms, and each form needs its
 * own handler (operand shape is baked into the generated code).
 */
std::vector<u8> variant_encoding(int table_index);

/** Build every compiled unit, in table order (canonical first, then
 *  the memform variant when one exists). */
std::vector<CompiledUnit> build_compiled_units();

/** Process-wide lazily-built units (shared by the CrossCheck
 *  interpreter reference and the staleness guard). */
const std::vector<CompiledUnit> &compiled_units();

/** Hash over every unit's shape + printed program; must equal the
 *  stamp in compiled_table(). */
u64 compiled_expected_hash();

/// @name Test hooks (tests/test_compiled.cpp).
/// @{
/** Override the expected hash (0 = disabled) so the staleness guard
 *  can be exercised without corrupting a real table. */
void compiled_test_override_hash(u64 hash);
/** Force CrossCheck to report divergence on every compiled step. */
void compiled_test_force_mismatch(bool on);
bool compiled_test_mismatch_forced();
/// @}

/**
 * A self-contained ConcreteMemory for differential testing and
 * benchmarking of semantics programs outside a full emulator: the
 * HiFiEmulator address map (CPU state image, instruction-buffer
 * scratch, wrapped guest physical RAM) backed by a deterministic
 * per-address byte pattern plus a sparse write overlay, with a journal
 * of every store. Two runs over equal seeds see identical loads, so
 * comparing (RunResult, journal) decides behavioral equality without
 * copying the 4 MiB RAM image.
 */
class ReplayMemory : public ir::ConcreteMemory
{
  public:
    struct StoreRec
    {
        u32 addr = 0;
        unsigned size = 0;
        u64 value = 0;

        bool operator==(const StoreRec &o) const
        {
            return addr == o.addr && size == o.size && value == o.value;
        }
    };

    explicit ReplayMemory(u64 seed = 0) : seed_(seed) {}

    /** Forget writes and reseed the pattern. */
    void reset(u64 seed);

    u64 load(u32 addr, unsigned size) override;
    void store(u32 addr, unsigned size, u64 value) override;

    /** Write without journaling (test setup: params, CPU fields). */
    void poke(u32 addr, unsigned size, u64 value);

    const std::vector<StoreRec> &journal() const { return journal_; }

  private:
    /** Mirror of HiFiEmulator::resolve + the per-byte guest-phys wrap;
     *  throws std::out_of_range outside the mapped regions. */
    u32 map_byte(u32 addr, unsigned i) const;
    u8 byte_at(u32 mapped) const;

    u64 seed_ = 0;
    std::unordered_map<u32, u8> overlay_;
    std::vector<StoreRec> journal_;
};

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_COMPILED_H
