/**
 * @file
 * Per-instruction semantics generators, part 1: ALU, data movement,
 * stack, conditionals, shifts, string operations. Part 2 (control
 * flow, system, bit operations) is in semantics_ops2.cpp.
 */
#include "hifi/ctx.h"

namespace pokeemu::hifi {

using arch::AluKind;
using arch::Op;
using arch::ShiftKind;

namespace {

ExprRef
imm32(u64 v)
{
    return E::constant(32, v);
}

ExprRef
bit_of(const ExprRef &value, unsigned pos)
{
    return E::extract(value, pos, 1);
}

} // namespace

// ---------------------------------------------------------------------
// Dispatcher.
// ---------------------------------------------------------------------

void
Ctx::gen()
{
    switch (insn_.desc->op) {
      case Op::AluRm8R8: case Op::AluRm32R32: case Op::AluR8Rm8:
      case Op::AluR32Rm32: case Op::AluAlImm8: case Op::AluEaxImm32:
      case Op::Grp1Rm8Imm8: case Op::Grp1Rm32Imm32:
      case Op::Grp1Rm32Imm8:
        gen_alu();
        return;
      case Op::IncR32: case Op::DecR32: case Op::PushR32:
      case Op::PopR32: case Op::PushImm32: case Op::PushImm8:
      case Op::IncRm8: case Op::DecRm8: case Op::IncRm32:
      case Op::DecRm32: case Op::PushRm32: case Op::PopRm32:
        gen_inc_dec_push_pop();
        return;
      case Op::MovRm8R8: case Op::MovRm32R32: case Op::MovR8Rm8:
      case Op::MovR32Rm32: case Op::MovRm8Imm8: case Op::MovRm32Imm32:
      case Op::MovR8Imm8: case Op::MovR32Imm32: case Op::MovRm16Sreg:
      case Op::MovSregRm16: case Op::Lea: case Op::MovAlMoffs:
      case Op::MovMoffsAl: case Op::MovEaxMoffs: case Op::MovMoffsEax:
        gen_mov();
        return;
      case Op::TestRm8R8: case Op::TestRm32R32: case Op::TestAlImm8:
      case Op::TestEaxImm32: case Op::XchgRm8R8: case Op::XchgRm32R32:
      case Op::XchgEaxR32:
        gen_test_xchg();
        return;
      case Op::JccRel8: case Op::JccRel32: case Op::SetccRm8:
      case Op::CmovccR32Rm32:
        gen_jcc_setcc_cmov();
        return;
      case Op::Nop: case Op::Cwde: case Op::Cdq: case Op::Pushfd:
      case Op::Popfd: case Op::Sahf: case Op::Lahf:
        gen_stack_misc();
        return;
      case Op::Movs8: case Op::Movs32: case Op::Cmps8: case Op::Cmps32:
      case Op::Stos8: case Op::Stos32: case Op::Lods8: case Op::Lods32:
      case Op::Scas8: case Op::Scas32:
        gen_string();
        return;
      case Op::ShiftRm8Imm8: case Op::ShiftRm32Imm8:
      case Op::ShiftRm8One: case Op::ShiftRm32One:
      case Op::ShiftRm8Cl: case Op::ShiftRm32Cl:
        gen_shift();
        return;
      case Op::RetImm16: case Op::Ret: case Op::CallRel32:
      case Op::JmpRel32: case Op::JmpRel8: case Op::Leave:
      case Op::Iret: case Op::Int3: case Op::IntImm8: case Op::Into:
      case Op::CallRm32: case Op::JmpRm32: case Op::JmpFar:
      case Op::CallFar:
        gen_control();
        return;
      case Op::Les: case Op::Lds: case Op::Lss: case Op::Lfs:
      case Op::Lgs:
        gen_far_load();
        return;
      case Op::Hlt: case Op::Cmc: case Op::Clc: case Op::Stc:
      case Op::Cli: case Op::Sti: case Op::Cld: case Op::Std:
        gen_flagops();
        return;
      case Op::Grp3TestRm8Imm8: case Op::Grp3TestRm32Imm32:
      case Op::Grp3NotRm8: case Op::Grp3NotRm32: case Op::Grp3NegRm8:
      case Op::Grp3NegRm32: case Op::Grp3MulRm8: case Op::Grp3MulRm32:
      case Op::Grp3ImulRm8: case Op::Grp3ImulRm32: case Op::Grp3DivRm8:
      case Op::Grp3DivRm32: case Op::Grp3IdivRm8: case Op::Grp3IdivRm32:
        gen_grp3();
        return;
      case Op::Sgdt: case Op::Sidt: case Op::Lgdt: case Op::Lidt:
      case Op::Invlpg: case Op::Clts: case Op::MovR32Cr:
      case Op::MovCrR32: case Op::Wrmsr: case Op::Rdtsc:
      case Op::Rdmsr: case Op::Cpuid:
        gen_system();
        return;
      case Op::BtRm32R32: case Op::BtsRm32R32: case Op::BtrRm32R32:
      case Op::BtcRm32R32: case Op::Grp8BtImm8: case Op::Grp8BtsImm8:
      case Op::Grp8BtrImm8: case Op::Grp8BtcImm8: case Op::ShldImm8:
      case Op::ShldCl: case Op::ShrdImm8: case Op::ShrdCl:
      case Op::Bsf: case Op::Bsr: case Op::BswapR32:
        gen_bitops();
        return;
      case Op::ImulR32Rm32: case Op::ImulR32Rm32Imm32:
      case Op::ImulR32Rm32Imm8:
        gen_mul_imul();
        return;
      case Op::CmpxchgRm8R8: case Op::CmpxchgRm32R32:
      case Op::XaddRm8R8: case Op::XaddRm32R32:
        gen_cmpxchg_xadd();
        return;
      case Op::MovzxR32Rm8: case Op::MovzxR32Rm16:
      case Op::MovsxR32Rm8: case Op::MovsxR32Rm16:
        gen_movzx_movsx();
        return;
      default:
        panic("no generator for op");
    }
}

// ---------------------------------------------------------------------
// ALU.
// ---------------------------------------------------------------------

void
Ctx::gen_alu()
{
    const Op op = insn_.desc->op;
    const AluKind kind = static_cast<AluKind>(insn_.desc->aux);
    const unsigned w =
        (op == Op::AluRm8R8 || op == Op::AluR8Rm8 ||
         op == Op::AluAlImm8 || op == Op::Grp1Rm8Imm8)
            ? 8 : 32;
    const bool is_cmp = kind == AluKind::Cmp;

    // Gather operands; destination may be rm, reg, or the accumulator.
    enum class Dst { Rm, Reg, Acc } dst_kind;
    ExprRef a, b;
    std::optional<PreparedWrite> pw;
    switch (op) {
      case Op::AluRm8R8: case Op::AluRm32R32:
        dst_kind = Dst::Rm;
        a = is_cmp ? read_rm(w) : read_rm_for_write(w, pw);
        b = reg_operand(insn_.reg, w);
        break;
      case Op::AluR8Rm8: case Op::AluR32Rm32:
        dst_kind = Dst::Reg;
        a = reg_operand(insn_.reg, w);
        b = read_rm(w);
        break;
      case Op::AluAlImm8: case Op::AluEaxImm32:
        dst_kind = Dst::Acc;
        a = reg_operand(arch::kEax, w);
        b = imm_v(w);
        break;
      case Op::Grp1Rm8Imm8: case Op::Grp1Rm32Imm32:
        dst_kind = Dst::Rm;
        a = is_cmp ? read_rm(w) : read_rm_for_write(w, pw);
        b = imm_v(w);
        break;
      case Op::Grp1Rm32Imm8:
        dst_kind = Dst::Rm;
        a = is_cmp ? read_rm(w) : read_rm_for_write(w, pw);
        b = imm_sext8_v(32);
        break;
      default:
        panic("bad alu op");
    }
    a = b_.assign(a, "alu a");
    b = b_.assign(b, "alu b");

    ExprRef res;
    FlagSet f;
    switch (kind) {
      case AluKind::Add:
        f = flags_add(a, b, E::bool_const(false));
        res = E::add(a, b);
        break;
      case AluKind::Adc: {
        ExprRef cf = flag(0);
        f = flags_add(a, b, cf);
        res = E::add(E::add(a, b), E::zext(cf, w));
        break;
      }
      case AluKind::Sub:
      case AluKind::Cmp:
        f = flags_sub(a, b, E::bool_const(false));
        res = E::sub(a, b);
        break;
      case AluKind::Sbb: {
        ExprRef cf = flag(0);
        f = flags_sub(a, b, cf);
        res = E::sub(E::sub(a, b), E::zext(cf, w));
        break;
      }
      case AluKind::And:
        res = E::band(a, b);
        f = flags_logic(res);
        break;
      case AluKind::Or:
        res = E::bor(a, b);
        f = flags_logic(res);
        break;
      case AluKind::Xor:
        res = E::bxor(a, b);
        f = flags_logic(res);
        break;
    }
    res = b_.assign(res, "alu result");

    if (!is_cmp) {
        switch (dst_kind) {
          case Dst::Rm:
            write_rm_commit(pw, w, res);
            break;
          case Dst::Reg:
            set_reg_operand(insn_.reg, w, res);
            break;
          case Dst::Acc:
            set_reg_operand(arch::kEax, w, res);
            break;
        }
    }
    write_flags(f);
    done();
}

// ---------------------------------------------------------------------
// inc/dec/push/pop.
// ---------------------------------------------------------------------

void
Ctx::gen_inc_dec_push_pop()
{
    const Op op = insn_.desc->op;
    switch (op) {
      case Op::IncR32: case Op::DecR32: {
        const unsigned r = insn_.desc->aux;
        ExprRef a = b_.assign(gpr(r), "value");
        const bool inc = op == Op::IncR32;
        FlagSet f = inc ? flags_add(a, imm32(1), E::bool_const(false))
                        : flags_sub(a, imm32(1), E::bool_const(false));
        f.cf = nullptr; // inc/dec preserve CF.
        set_gpr(r, inc ? E::add(a, imm32(1)) : E::sub(a, imm32(1)));
        write_flags(f);
        done();
        return;
      }
      case Op::IncRm8: case Op::DecRm8:
      case Op::IncRm32: case Op::DecRm32: {
        const unsigned w =
            (op == Op::IncRm8 || op == Op::DecRm8) ? 8 : 32;
        const bool inc = op == Op::IncRm8 || op == Op::IncRm32;
        std::optional<PreparedWrite> pw;
        ExprRef a = b_.assign(read_rm_for_write(w, pw), "value");
        ExprRef one = E::constant(w, 1);
        FlagSet f = inc ? flags_add(a, one, E::bool_const(false))
                        : flags_sub(a, one, E::bool_const(false));
        f.cf = nullptr;
        write_rm_commit(pw, w, inc ? E::add(a, one) : E::sub(a, one));
        write_flags(f);
        done();
        return;
      }
      case Op::PushR32:
        push32(gpr(insn_.desc->aux));
        done();
        return;
      case Op::PushImm32:
        push32(imm_v(32));
        done();
        return;
      case Op::PushImm8:
        push32(imm_sext8_v(32));
        done();
        return;
      case Op::PushRm32:
        push32(b_.assign(read_rm(32), "pushed value"));
        done();
        return;
      case Op::PopR32: {
        ExprRef val = b_.assign(stack_read(imm32(0), 4), "popped");
        set_gpr(arch::kEsp, E::add(gpr(arch::kEsp), imm32(4)));
        // pop esp: the written value wins over the increment.
        set_gpr(insn_.desc->aux, val);
        done();
        return;
      }
      case Op::PopRm32: {
        ExprRef val = b_.assign(stack_read(imm32(0), 4), "popped");
        std::optional<PreparedWrite> pw;
        read_rm_for_write(32, pw);
        write_rm_commit(pw, 32, val);
        set_gpr(arch::kEsp, E::add(gpr(arch::kEsp), imm32(4)));
        done();
        return;
      }
      default:
        panic("bad push/pop op");
    }
}

// ---------------------------------------------------------------------
// Moves.
// ---------------------------------------------------------------------

void
Ctx::gen_mov()
{
    const Op op = insn_.desc->op;
    switch (op) {
      case Op::MovRm8R8:
      case Op::MovRm32R32: {
        const unsigned w = op == Op::MovRm8R8 ? 8 : 32;
        ExprRef v = reg_operand(insn_.reg, w);
        if (insn_.mod == 3) {
            set_reg_operand(insn_.rm, w, v);
        } else {
            mem_write(effective_segment(), effective_address(), w / 8,
                      v);
        }
        done();
        return;
      }
      case Op::MovR8Rm8:
      case Op::MovR32Rm32: {
        const unsigned w = op == Op::MovR8Rm8 ? 8 : 32;
        set_reg_operand(insn_.reg, w, read_rm(w));
        done();
        return;
      }
      case Op::MovRm8Imm8:
      case Op::MovRm32Imm32: {
        const unsigned w = op == Op::MovRm8Imm8 ? 8 : 32;
        ExprRef v = imm_v(w);
        if (insn_.mod == 3) {
            set_reg_operand(insn_.rm, w, v);
        } else {
            mem_write(effective_segment(), effective_address(), w / 8,
                      v);
        }
        done();
        return;
      }
      case Op::MovR8Imm8:
        set_gpr8(insn_.desc->aux, imm_v(8));
        done();
        return;
      case Op::MovR32Imm32:
        set_gpr(insn_.desc->aux, imm_v(32));
        done();
        return;
      case Op::MovRm16Sreg: {
        ExprRef sel = seg_sel(insn_.reg);
        if (insn_.mod == 3) {
            set_gpr16(insn_.rm, sel);
        } else {
            mem_write(effective_segment(), effective_address(), 2, sel);
        }
        done();
        return;
      }
      case Op::MovSregRm16: {
        ExprRef sel = b_.assign(read_rm(16), "selector");
        load_segment(insn_.reg, sel);
        done();
        return;
      }
      case Op::Lea:
        set_gpr(insn_.reg, effective_address());
        done();
        return;
      case Op::MovAlMoffs:
        set_gpr8(0, mem_read(
            insn_.seg_override >= 0
                ? static_cast<unsigned>(insn_.seg_override)
                : static_cast<unsigned>(arch::kDs),
            imm_v(32), 1));
        done();
        return;
      case Op::MovEaxMoffs:
        set_gpr(arch::kEax, mem_read(
            insn_.seg_override >= 0
                ? static_cast<unsigned>(insn_.seg_override)
                : static_cast<unsigned>(arch::kDs),
            imm_v(32), 4));
        done();
        return;
      case Op::MovMoffsAl:
        mem_write(insn_.seg_override >= 0
                      ? static_cast<unsigned>(insn_.seg_override)
                      : static_cast<unsigned>(arch::kDs),
                  imm_v(32), 1, gpr8(0));
        done();
        return;
      case Op::MovMoffsEax:
        mem_write(insn_.seg_override >= 0
                      ? static_cast<unsigned>(insn_.seg_override)
                      : static_cast<unsigned>(arch::kDs),
                  imm_v(32), 4, gpr(arch::kEax));
        done();
        return;
      default:
        panic("bad mov op");
    }
}

// ---------------------------------------------------------------------
// test / xchg.
// ---------------------------------------------------------------------

void
Ctx::gen_test_xchg()
{
    const Op op = insn_.desc->op;
    switch (op) {
      case Op::TestRm8R8:
      case Op::TestRm32R32: {
        const unsigned w = op == Op::TestRm8R8 ? 8 : 32;
        ExprRef a = read_rm(w);
        ExprRef b = reg_operand(insn_.reg, w);
        write_flags(flags_logic(b_.assign(E::band(a, b), "test")));
        done();
        return;
      }
      case Op::TestAlImm8:
      case Op::TestEaxImm32: {
        const unsigned w = op == Op::TestAlImm8 ? 8 : 32;
        ExprRef a = reg_operand(arch::kEax, w);
        write_flags(flags_logic(b_.assign(
            E::band(a, imm_v(w)), "test")));
        done();
        return;
      }
      case Op::XchgRm8R8:
      case Op::XchgRm32R32: {
        const unsigned w = op == Op::XchgRm8R8 ? 8 : 32;
        std::optional<PreparedWrite> pw;
        ExprRef old_rm = b_.assign(read_rm_for_write(w, pw), "old rm");
        ExprRef old_reg = b_.assign(reg_operand(insn_.reg, w),
                                    "old reg");
        write_rm_commit(pw, w, old_reg);
        set_reg_operand(insn_.reg, w, old_rm);
        done();
        return;
      }
      case Op::XchgEaxR32: {
        const unsigned r = insn_.desc->aux;
        ExprRef a = b_.assign(gpr(arch::kEax), "eax");
        ExprRef c = b_.assign(gpr(r), "other");
        set_gpr(arch::kEax, c);
        set_gpr(r, a);
        done();
        return;
      }
      default:
        panic("bad test/xchg op");
    }
}

// ---------------------------------------------------------------------
// Conditionals.
// ---------------------------------------------------------------------

void
Ctx::gen_jcc_setcc_cmov()
{
    const Op op = insn_.desc->op;
    const unsigned cc = insn_.desc->aux;
    switch (op) {
      case Op::JccRel8:
      case Op::JccRel32: {
        ExprRef cond = cond_cc(cc);
        ExprRef rel = op == Op::JccRel8 ? imm_sext8_v(32) : imm_v(32);
        ExprRef eip = b_.assign(ld32(layout::kEipAddr), "eip");
        ExprRef next = E::add(eip, imm32(insn_.length));
        Label taken = b_.label(), not_taken = b_.label();
        b_.cjmp(cond, taken, not_taken, "jcc");
        b_.bind(taken);
        set_eip(E::add(next, rel));
        b_.halt(kHaltOk);
        b_.bind(not_taken);
        set_eip(next);
        b_.halt(kHaltOk);
        return;
      }
      case Op::SetccRm8: {
        ExprRef v = E::zext(cond_cc(cc), 8);
        if (insn_.mod == 3) {
            set_gpr8(insn_.rm, v);
        } else {
            mem_write(effective_segment(), effective_address(), 1, v);
        }
        done();
        return;
      }
      case Op::CmovccR32Rm32: {
        // The source is read (and can fault) regardless of the
        // condition, as on hardware.
        ExprRef src = b_.assign(read_rm(32), "cmov src");
        ExprRef dst = gpr(insn_.reg);
        set_gpr(insn_.reg, E::ite(cond_cc(cc), src, dst));
        done();
        return;
      }
      default:
        panic("bad cc op");
    }
}

// ---------------------------------------------------------------------
// Misc stack/flags/width ops.
// ---------------------------------------------------------------------

void
Ctx::gen_stack_misc()
{
    switch (insn_.desc->op) {
      case Op::Nop:
        done();
        return;
      case Op::Cwde:
        set_gpr(arch::kEax, E::sext(gpr16(arch::kEax), 32));
        done();
        return;
      case Op::Cdq: {
        ExprRef sign = bit_of(gpr(arch::kEax), 31);
        set_gpr(arch::kEdx,
                E::ite(sign, imm32(0xffffffff), imm32(0)));
        done();
        return;
      }
      case Op::Pushfd: {
        // VM and RF are always pushed as zero.
        ExprRef fl = E::band(eflags(), imm32(~u64{0x30000}));
        push32(fl);
        done();
        return;
      }
      case Op::Popfd: {
        ExprRef val = b_.assign(stack_read(imm32(0), 4), "popped");
        set_gpr(arch::kEsp, E::add(gpr(arch::kEsp), imm32(4)));
        // CPL0 may modify all of these: CF PF AF ZF SF TF IF DF OF
        // IOPL NT AC.
        const u64 mask = 0x47fd5;
        ExprRef fl = eflags();
        set_eflags(E::bor(E::band(fl, imm32(~mask)),
                          E::band(val, imm32(mask))));
        done();
        return;
      }
      case Op::Sahf: {
        // SF ZF AF PF CF from AH (bits 7,6,4,2,0).
        ExprRef ah = gpr8(4);
        const u64 mask = 0xd5;
        ExprRef fl = eflags();
        set_eflags(E::bor(E::band(fl, imm32(~mask)),
                          E::band(E::zext(ah, 32), imm32(mask))));
        done();
        return;
      }
      case Op::Lahf: {
        ExprRef low = E::extract(eflags(), 0, 8);
        // Bit 1 reads as one; bits 3 and 5 as zero.
        set_gpr8(4, E::bor(E::band(low, E::constant(8, 0xd5)),
                           E::constant(8, 0x02)));
        done();
        return;
      }
      default:
        panic("bad misc op");
    }
}

// ---------------------------------------------------------------------
// String operations.
// ---------------------------------------------------------------------

void
Ctx::gen_string()
{
    const Op op = insn_.desc->op;
    const unsigned w =
        (op == Op::Movs8 || op == Op::Cmps8 || op == Op::Stos8 ||
         op == Op::Lods8 || op == Op::Scas8)
            ? 8 : 32;
    const unsigned size = w / 8;
    const unsigned src_seg = insn_.seg_override >= 0
        ? static_cast<unsigned>(insn_.seg_override)
        : static_cast<unsigned>(arch::kDs);

    const bool rep = insn_.rep || insn_.repne;
    const bool is_cmps = op == Op::Cmps8 || op == Op::Cmps32;
    const bool is_scas = op == Op::Scas8 || op == Op::Scas32;

    Label head = 0, done_label = 0;
    if (rep) {
        head = b_.here();
        done_label = b_.label();
        ExprRef ecx = gpr(arch::kEcx);
        b_.if_goto(E::eq(ecx, imm32(0)), done_label, "rep: ecx == 0");
    }

    // Direction delta: +size or -size per DF.
    ExprRef delta = b_.assign(
        E::ite(flag(10), imm32(static_cast<u64>(-static_cast<s64>(size))),
               imm32(size)),
        "direction delta");

    // One iteration.
    switch (op) {
      case Op::Movs8: case Op::Movs32: {
        ExprRef esi = b_.assign(gpr(arch::kEsi), "esi");
        ExprRef edi = b_.assign(gpr(arch::kEdi), "edi");
        ExprRef v = mem_read(src_seg, esi, size);
        mem_write(arch::kEs, edi, size, v);
        set_gpr(arch::kEsi, E::add(esi, delta));
        set_gpr(arch::kEdi, E::add(edi, delta));
        break;
      }
      case Op::Stos8: case Op::Stos32: {
        ExprRef edi = b_.assign(gpr(arch::kEdi), "edi");
        mem_write(arch::kEs, edi, size,
                  w == 8 ? gpr8(0) : gpr(arch::kEax));
        set_gpr(arch::kEdi, E::add(edi, delta));
        break;
      }
      case Op::Lods8: case Op::Lods32: {
        ExprRef esi = b_.assign(gpr(arch::kEsi), "esi");
        ExprRef v = mem_read(src_seg, esi, size);
        if (w == 8)
            set_gpr8(0, v);
        else
            set_gpr(arch::kEax, v);
        set_gpr(arch::kEsi, E::add(esi, delta));
        break;
      }
      case Op::Scas8: case Op::Scas32: {
        ExprRef edi = b_.assign(gpr(arch::kEdi), "edi");
        ExprRef v = b_.assign(mem_read(arch::kEs, edi, size), "mem");
        ExprRef acc = w == 8 ? gpr8(0) : gpr(arch::kEax);
        write_flags(flags_sub(acc, v, E::bool_const(false)));
        set_gpr(arch::kEdi, E::add(edi, delta));
        break;
      }
      case Op::Cmps8: case Op::Cmps32: {
        ExprRef esi = b_.assign(gpr(arch::kEsi), "esi");
        ExprRef edi = b_.assign(gpr(arch::kEdi), "edi");
        ExprRef v1 = b_.assign(mem_read(src_seg, esi, size), "src");
        ExprRef v2 = b_.assign(mem_read(arch::kEs, edi, size), "dst");
        write_flags(flags_sub(v1, v2, E::bool_const(false)));
        set_gpr(arch::kEsi, E::add(esi, delta));
        set_gpr(arch::kEdi, E::add(edi, delta));
        break;
      }
      default:
        panic("bad string op");
    }

    if (rep) {
        set_gpr(arch::kEcx, E::sub(gpr(arch::kEcx), imm32(1)));
        if (is_cmps || is_scas) {
            // REPE continues while ZF=1; REPNE while ZF=0.
            ExprRef zf = flag(6);
            ExprRef stop = insn_.repne ? zf : E::lnot(zf);
            b_.if_goto(stop, done_label, "rep termination");
        }
        b_.jmp(head);
        b_.bind(done_label);
    }
    done();
}

// ---------------------------------------------------------------------
// Shifts and rotates.
// ---------------------------------------------------------------------

void
Ctx::gen_shift()
{
    const Op op = insn_.desc->op;
    const ShiftKind kind = static_cast<ShiftKind>(insn_.desc->aux);
    const unsigned w =
        (op == Op::ShiftRm8Imm8 || op == Op::ShiftRm8One ||
         op == Op::ShiftRm8Cl)
            ? 8 : 32;

    std::optional<PreparedWrite> pw;
    ExprRef a = b_.assign(read_rm_for_write(w, pw), "shift operand");

    ExprRef count;
    if (op == Op::ShiftRm8Imm8 || op == Op::ShiftRm32Imm8) {
        count = shift_count_v();
    } else if (op == Op::ShiftRm8One || op == Op::ShiftRm32One) {
        count = E::constant(8, 1);
    } else {
        count = E::band(gpr8(1), E::constant(8, 0x1f)); // CL.
    }
    count = b_.assign(count, "count");
    ExprRef cnt64 = E::zext(count, 64);
    ExprRef is_zero = b_.assign(E::eq(count, E::constant(8, 0)),
                                "count is zero");

    ExprRef res, cf, of;
    const ExprRef a64 = E::zext(a, 64);
    switch (kind) {
      case ShiftKind::Shl:
      case ShiftKind::ShlAlias: {
        ExprRef wide = E::shl(a64, cnt64);
        res = E::extract(wide, 0, w);
        cf = E::extract(wide, w, 1);
        of = E::bxor(cf, bit_of(res, w - 1));
        break;
      }
      case ShiftKind::Shr: {
        res = E::extract(E::lshr(a64, cnt64), 0, w);
        ExprRef prev = E::lshr(
            a64, E::sub(cnt64, E::constant(64, 1)));
        cf = E::extract(prev, 0, 1);
        of = bit_of(a, w - 1);
        break;
      }
      case ShiftKind::Sar: {
        ExprRef sa = E::sext(a, 64);
        // Arithmetic shift: sign-extend to 64 first so fills are sign
        // bits even for counts near w.
        res = E::extract(E::ashr(sa, cnt64), 0, w);
        ExprRef prev = E::ashr(
            sa, E::sub(cnt64, E::constant(64, 1)));
        cf = E::extract(prev, 0, 1);
        of = E::bool_const(false);
        break;
      }
      case ShiftKind::Rol: {
        ExprRef cmod = E::band(cnt64, E::constant(64, w - 1));
        ExprRef left = E::shl(a64, cmod);
        ExprRef right = E::lshr(
            a64, E::sub(E::constant(64, w), cmod));
        // When cmod == 0, (w - cmod) == w shifts everything out: the
        // or below still yields the original value via `left`.
        res = E::extract(E::bor(left, right), 0, w);
        cf = bit_of(res, 0);
        of = E::bxor(cf, bit_of(res, w - 1));
        break;
      }
      case ShiftKind::Ror: {
        ExprRef cmod = E::band(cnt64, E::constant(64, w - 1));
        ExprRef right = E::lshr(a64, cmod);
        ExprRef left = E::shl(
            a64, E::sub(E::constant(64, w), cmod));
        res = E::extract(E::bor(right, left), 0, w);
        cf = bit_of(res, w - 1);
        of = E::bxor(bit_of(res, w - 1), bit_of(res, w - 2));
        break;
      }
      case ShiftKind::Rcl:
      case ShiftKind::Rcr:
        panic("rcl/rcr not in subset");
    }
    res = b_.assign(res, "shift result");

    // Count of zero leaves value and flags untouched.
    ExprRef out = E::ite(is_zero, a, res);
    write_rm_commit(pw, w, out);

    const bool is_rotate =
        kind == ShiftKind::Rol || kind == ShiftKind::Ror;
    FlagSet f;
    f.cf = E::ite(is_zero, flag(0), cf);
    f.of = E::ite(is_zero, flag(11), of);
    if (!is_rotate) {
        f.pf = E::ite(is_zero, flag(2), parity(res));
        f.zf = E::ite(is_zero, flag(6),
                      E::eq(res, E::constant(w, 0)));
        f.sf = E::ite(is_zero, flag(7), bit_of(res, w - 1));
        // AF is documented-undefined; this implementation clears it
        // for nonzero counts (hardware-model choice).
        f.af = E::ite(is_zero, flag(4), E::bool_const(false));
    }
    write_flags(f);
    done();
}

} // namespace pokeemu::hifi
