#include "hifi/sequence.h"

#include "ir/builder.h"

namespace pokeemu::hifi {

using ir::ExprRef;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
namespace E = ir::E;
namespace layout = arch::layout;

namespace {

/** Rebase every Temp reference in @p expr by @p temp_offset. */
ExprRef
rebase_expr(const ExprRef &expr, u32 temp_offset)
{
    if (!expr || temp_offset == 0)
        return expr;
    return ir::substitute(expr, [&](const ir::Expr &leaf) -> ExprRef {
        if (leaf.kind() == ir::ExprKind::Temp) {
            return E::temp(leaf.temp_id() + temp_offset,
                           leaf.width());
        }
        return nullptr;
    });
}

} // namespace

Program
build_sequence_semantics(const std::vector<arch::DecodedInsn> &insns,
                         const SemanticsOptions &options)
{
    assert(!insns.empty());
    const u32 num_parts = static_cast<u32>(insns.size());

    // Build all per-instruction programs first so every offset is
    // known up front. Parts are stitched unoptimized; the optimizer
    // runs once over the composed program below, where it also sees
    // cross-instruction dead code.
    SemanticsOptions part_options = options;
    part_options.opt = analysis::OptMode::Off;
    std::vector<Program> parts;
    parts.reserve(num_parts);
    for (const auto &insn : insns)
        parts.push_back(build_semantics(insn, part_options));

    Program out;
    out.name = "sequence";
    for (const auto &insn : insns)
        out.name += std::string("_") + insn.desc->mnemonic;

    // Temp layout: [0] start eip, then per part: the part's temps
    // followed (for non-final parts) by one eip-check temp.
    std::vector<u32> temp_offset(num_parts);
    std::vector<u32> check_temp(num_parts);
    out.temp_width.push_back(32); // start eip
    for (u32 i = 0; i < num_parts; ++i) {
        temp_offset[i] = static_cast<u32>(out.temp_width.size());
        out.temp_width.insert(out.temp_width.end(),
                              parts[i].temp_width.begin(),
                              parts[i].temp_width.end());
        if (i + 1 < num_parts) {
            check_temp[i] = static_cast<u32>(out.temp_width.size());
            out.temp_width.push_back(32);
        }
    }

    // Label layout: [0..num_parts-1] part entries, [num_parts]
    // diverged exit, then each part's own labels.
    std::vector<u32> label_offset(num_parts);
    u32 next_label = num_parts + 1;
    for (u32 i = 0; i < num_parts; ++i) {
        label_offset[i] = next_label;
        next_label += parts[i].num_labels();
    }
    out.label_pos.assign(next_label, 0);

    // Capture the dynamic start EIP.
    {
        Stmt load_eip;
        load_eip.kind = StmtKind::Load;
        load_eip.temp = 0;
        load_eip.addr = E::constant(32, layout::kEipAddr);
        load_eip.size = 4;
        load_eip.note = "sequence start eip";
        out.stmts.push_back(std::move(load_eip));
    }
    const ExprRef start_eip = E::temp(0, 32);

    u32 cumulative_length = 0;
    for (u32 part = 0; part < num_parts; ++part) {
        const Program &p = parts[part];
        out.label_pos[part] = static_cast<u32>(out.stmts.size());
        cumulative_length += insns[part].length;

        // Per-statement index map (halt expansion shifts positions).
        std::vector<u32> new_index(p.stmts.size());
        for (std::size_t i = 0; i < p.stmts.size(); ++i) {
            new_index[i] = static_cast<u32>(out.stmts.size());
            const Stmt &orig = p.stmts[i];
            Stmt s = orig;
            s.expr = rebase_expr(s.expr, temp_offset[part]);
            s.addr = rebase_expr(s.addr, temp_offset[part]);
            if (s.kind == StmtKind::Assign || s.kind == StmtKind::Load)
                s.temp += temp_offset[part];
            if (s.kind == StmtKind::CJmp || s.kind == StmtKind::Jmp) {
                s.target_true += label_offset[part];
                if (s.kind == StmtKind::CJmp)
                    s.target_false += label_offset[part];
            }
            if (s.kind == StmtKind::Halt) {
                const bool normal = s.expr->is_const() &&
                                    s.expr->value() == kHaltOk;
                if (normal && part + 1 < num_parts) {
                    // Replace the normal completion with a
                    // fall-through check onto the next instruction.
                    Stmt load_eip;
                    load_eip.kind = StmtKind::Load;
                    load_eip.temp = check_temp[part];
                    load_eip.addr =
                        E::constant(32, layout::kEipAddr);
                    load_eip.size = 4;
                    load_eip.note = "post-insn eip";
                    out.stmts.push_back(std::move(load_eip));

                    Stmt check;
                    check.kind = StmtKind::CJmp;
                    check.expr = E::eq(
                        E::temp(check_temp[part], 32),
                        E::add(start_eip,
                               E::constant(32, cumulative_length)));
                    check.target_true = part + 1;
                    check.target_false = num_parts; // Diverged.
                    check.note = "fall-through?";
                    out.stmts.push_back(std::move(check));
                    continue;
                }
                // Tag the halt code with the instruction index.
                s.expr = E::bor(
                    s.expr,
                    E::constant(32, static_cast<u64>(part) << 16));
            }
            out.stmts.push_back(std::move(s));
        }
        for (u32 l = 0; l < p.num_labels(); ++l)
            out.label_pos[label_offset[part] + l] =
                new_index[p.label_pos[l]];
    }

    // Diverged exit.
    out.label_pos[num_parts] = static_cast<u32>(out.stmts.size());
    {
        Stmt halt;
        halt.kind = StmtKind::Halt;
        halt.expr = E::constant(32, kHaltDiverged);
        out.stmts.push_back(std::move(halt));
    }

    out.validate();
    if (options.opt != analysis::OptMode::Off)
        out = analysis::optimize_program(out).program;
    return out;
}

} // namespace pokeemu::hifi
