/**
 * @file
 * Compiled-semantics unit construction and staleness hashing: the
 * parts shared by the generator (tools/semgen) and the runtime. Kept
 * free of references to compiled_table() so semgen itself links
 * against the core library without a generated table; dispatch lives
 * in compiled_dispatch.cpp.
 */
#include "hifi/compiled.h"

#include <atomic>
#include <stdexcept>

#include "ir/printer.h"

namespace pokeemu::hifi {

const char *
compiled_exec_name(CompiledExec mode)
{
    switch (mode) {
      case CompiledExec::Off: return "off";
      case CompiledExec::On: return "on";
      case CompiledExec::CrossCheck: return "crosscheck";
    }
    return "?";
}

bool
compiled_params_ok(arch::Op op)
{
    switch (op) {
      case arch::Op::IntImm8:  // Vector baked into the fault path.
      case arch::Op::JmpFar:   // Builder branches on selector fields.
      case arch::Op::CallFar:
        return false;
      default:
        return true;
    }
}

SemanticsOptions
compiled_build_options(bool params_ok)
{
    SemanticsOptions options;
    options.hifi_far_fetch_order = true; // The seeded Bochs order.
    options.descriptor_summary = nullptr; // Self-contained programs.
    options.opt = analysis::OptMode::On;
    options.generic_params = params_ok;
    return options;
}

std::vector<u8>
variant_encoding(int table_index)
{
    const std::vector<u8> canonical =
        arch::canonical_encoding(table_index);
    arch::DecodedInsn insn;
    if (arch::decode(canonical.data(), canonical.size(), insn) !=
            arch::DecodeStatus::Ok ||
        !insn.has_modrm) {
        return {};
    }
    // Canonical encodings carry no prefixes, so the ModRM byte sits
    // right after the (possibly 0x0f-prefixed) opcode.
    const std::size_t modrm_pos = canonical[0] == 0x0f ? 2 : 1;
    std::vector<u8> bytes(canonical.begin(),
                          canonical.begin() + modrm_pos);
    std::size_t tail = modrm_pos + 1; // Past ModRM (no SIB: rm != 4).
    u8 expect_mod;
    if (insn.mod == 3) {
        // Register canonical -> [disp32] memory variant.
        bytes.push_back(static_cast<u8>((insn.modrm & 0x38) | 0x05));
        bytes.insert(bytes.end(), 4, 0); // disp32 = 0.
        expect_mod = 0;
    } else {
        // [disp32] memory canonical -> register (mod=3, rm=0) variant.
        bytes.push_back(static_cast<u8>(0xc0 | (insn.modrm & 0x38)));
        tail += 4; // Skip the canonical encoding's disp32.
        expect_mod = 3;
    }
    bytes.insert(bytes.end(), canonical.begin() + tail,
                 canonical.end()); // Immediate bytes, if any.
    arch::DecodedInsn variant;
    if (arch::decode(bytes.data(), bytes.size(), variant) !=
            arch::DecodeStatus::Ok ||
        variant.table_index != table_index ||
        variant.mod != expect_mod || variant.has_sib) {
        return {};
    }
    return bytes;
}

std::vector<CompiledUnit>
build_compiled_units()
{
    std::vector<CompiledUnit> units;
    const auto &table = arch::insn_table();
    units.reserve(table.size() * 2);
    for (std::size_t i = 0; i < table.size(); ++i) {
        const int index = static_cast<int>(i);
        const std::vector<u8> canonical = arch::canonical_encoding(index);
        arch::DecodedInsn insn;
        if (arch::decode(canonical.data(), canonical.size(), insn) !=
                arch::DecodeStatus::Ok ||
            insn.table_index != index) {
            throw std::logic_error(
                "compiled units: canonical encoding failed to decode");
        }
        CompiledUnit unit;
        unit.insn = insn;
        unit.params_ok = compiled_params_ok(insn.desc->op);
        unit.program =
            build_semantics(insn, compiled_build_options(unit.params_ok));
        units.push_back(std::move(unit));

        const std::vector<u8> mem = variant_encoding(index);
        if (mem.empty())
            continue;
        arch::DecodedInsn minsn;
        if (arch::decode(mem.data(), mem.size(), minsn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        CompiledUnit mu;
        mu.insn = minsn;
        mu.params_ok = compiled_params_ok(minsn.desc->op);
        mu.program =
            build_semantics(minsn, compiled_build_options(mu.params_ok));
        mu.variant = true;
        units.push_back(std::move(mu));
    }
    return units;
}

const std::vector<CompiledUnit> &
compiled_units()
{
    static const std::vector<CompiledUnit> units = build_compiled_units();
    return units;
}

namespace {

constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

void
hash_bytes(u64 &h, const void *data, std::size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hash_u64(u64 &h, u64 v)
{
    hash_bytes(h, &v, sizeof v);
}

std::atomic<u64> g_hash_override{0};
std::atomic<bool> g_force_mismatch{false};

} // namespace

namespace {

u64
compute_expected_hash()
{
    u64 h = kFnvOffset;
    const auto &units = compiled_units();
    hash_u64(h, units.size());
    for (const CompiledUnit &unit : units) {
        hash_u64(h, static_cast<u64>(unit.insn.table_index));
        hash_bytes(h, unit.insn.bytes, unit.insn.length);
        hash_u64(h, unit.params_ok);
        hash_u64(h, unit.variant);
        const std::string text = ir::to_string(unit.program);
        hash_u64(h, text.size());
        hash_bytes(h, text.data(), text.size());
        // Fold the derived cycle cost so a change to the derivation
        // rules (timing/cost_model.h) stales the emitted cost table
        // exactly like a semantics change stales the handlers.
        const timing::UnitCost cost = timing::derive_cost(unit.program);
        hash_u64(h, cost.base);
        hash_u64(h, cost.mem_accesses);
        hash_u64(h, cost.fault_extra);
    }
    return h;
}

} // namespace

u64
compiled_expected_hash()
{
    const u64 override_hash = g_hash_override.load();
    if (override_hash != 0)
        return override_hash;
    // Deriving the hash rebuilds and prints every unit's program, so
    // the real value is computed once per process.
    static const u64 real = compute_expected_hash();
    return real;
}

void
compiled_test_override_hash(u64 hash)
{
    g_hash_override.store(hash);
}

void
compiled_test_force_mismatch(bool on)
{
    g_force_mismatch.store(on);
}

bool
compiled_test_mismatch_forced()
{
    return g_force_mismatch.load();
}

// ---------------------------------------------------------------------
// ReplayMemory.
// ---------------------------------------------------------------------

void
ReplayMemory::reset(u64 seed)
{
    seed_ = seed;
    overlay_.clear();
    journal_.clear();
}

u32
ReplayMemory::map_byte(u32 addr, unsigned i) const
{
    namespace layout = arch::layout;
    // Mirrors HiFiEmulator::load/store: guest physical accesses wrap
    // modulo the memory size per byte; other regions are flat.
    u32 a = addr + i;
    if (addr >= layout::kGuestPhysBase) {
        a = layout::kGuestPhysBase +
            ((addr - layout::kGuestPhysBase + i) &
             (arch::kPhysMemSize - 1));
    }
    const bool mapped =
        (a >= layout::kCpuBase &&
         a < layout::kCpuBase + layout::kCpuStateSize) ||
        (a >= layout::kInsnBufBase && a < layout::kInsnBufBase + 0x100) ||
        (a >= layout::kGuestPhysBase &&
         a < layout::kGuestPhysBase + arch::kPhysMemSize);
    if (!mapped)
        throw std::out_of_range("ReplayMemory: access outside regions");
    return a;
}

u8
ReplayMemory::byte_at(u32 mapped) const
{
    const auto it = overlay_.find(mapped);
    if (it != overlay_.end())
        return it->second;
    // splitmix64 over (seed, address): deterministic background
    // pattern without materializing the address space.
    u64 z = seed_ + 0x9e3779b97f4a7c15ull * (mapped + 1ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<u8>(z ^ (z >> 31));
}

u64
ReplayMemory::load(u32 addr, unsigned size)
{
    u64 v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<u64>(byte_at(map_byte(addr, i))) << (8 * i);
    return v;
}

void
ReplayMemory::store(u32 addr, unsigned size, u64 value)
{
    journal_.push_back({addr, size, value});
    for (unsigned i = 0; i < size; ++i) {
        overlay_[map_byte(addr, i)] =
            static_cast<u8>(value >> (8 * i));
    }
}

void
ReplayMemory::poke(u32 addr, unsigned size, u64 value)
{
    for (unsigned i = 0; i < size; ++i) {
        overlay_[map_byte(addr, i)] =
            static_cast<u8>(value >> (8 * i));
    }
}

} // namespace pokeemu::hifi
