/**
 * @file
 * Hi-Fi emulator semantics: one IR program per decoded instruction.
 *
 * This is the analog of Bochs' per-instruction implementation code as
 * seen by FuzzBALL (paper §3.3): the program reads and writes the
 * machine-state byte image (arch/layout.h) and the guest physical
 * memory, performs the full protection checks (segment type/limit,
 * two-level page walk with A/D updates), computes flags branchlessly
 * (so flag math does not multiply paths), and ends in a Halt whose
 * code classifies the outcome:
 *     kHaltOk                normal completion
 *     kHaltException | vec   fault raised (state records vector/error)
 *     kHaltStop              hlt executed
 *
 * The builder has two knobs that mirror the paper:
 *  - an optional descriptor-load Summary (paper §3.3.2) used by
 *    segment-register loads instead of inlining the multi-path load;
 *  - the Hi-Fi fetch order for far-pointer loads (Bochs fetches the
 *    offset and selector in the opposite order from QEMU/hardware,
 *    paper §6.2) — seeded here so cross-validation can find it.
 */
#ifndef POKEEMU_HIFI_SEMANTICS_H
#define POKEEMU_HIFI_SEMANTICS_H

#include "analysis/optimize.h"
#include "arch/decoder.h"
#include "arch/layout.h"
#include "ir/stmt.h"
#include "symexec/summarize.h"

namespace pokeemu::hifi {

/// @name Halt-code classification.
/// @{
constexpr u32 kHaltOk = 0;
constexpr u32 kHaltStop = 1;             ///< hlt instruction.
constexpr u32 kHaltException = 0x100;    ///< | exception vector.

constexpr u32
halt_exception_code(u8 vector)
{
    return kHaltException | vector;
}
/// @}

/**
 * How HiFiEmulator executes semantics for concrete replay
 * (hifi/compiled.h): interpret the IR, dispatch to the build-time
 * compiled handler (interpreter fallback for uncompiled encodings), or
 * run both and fault on divergence (FaultClass::CodegenMismatch).
 */
enum class CompiledExec : u8 { Off, On, CrossCheck };

const char *compiled_exec_name(CompiledExec mode);

/** Options controlling semantics generation. */
struct SemanticsOptions
{
    /**
     * Far-pointer loads (les/lds/lss/lfs/lgs) fetch offset-then-
     * selector when false (hardware/QEMU order) or selector-then-
     * offset when true (the Bochs order the paper observed).
     */
    bool hifi_far_fetch_order = true;

    /**
     * Pre-computed descriptor-load summary (paper §3.3.2). When set,
     * segment-register loads substitute the summary expressions
     * instead of exploring the descriptor parse inline.
     */
    const symexec::Summary *descriptor_summary = nullptr;

    /**
     * Run the IR optimizer (analysis/optimize.h) over the built
     * program. At this level Validated behaves like On — validation
     * needs an exploration environment and happens in the pipeline
     * (pokeemu/pipeline.h), which only threads On/Off down here.
     */
    analysis::OptMode opt = analysis::OptMode::Off;

    /** Concrete-replay execution mode (used by HiFiEmulator, not by
     *  the builder itself; carried here so one options struct threads
     *  through runner/pipeline/campaign). */
    CompiledExec compiled = CompiledExec::Off;

    /** Accumulate per-run cycle totals (timing/cost_model.h). Like
     *  `compiled`, consumed by HiFiEmulator only: it never changes
     *  built programs, semantics caching, or compiled dispatch. */
    bool timing = false;

    /**
     * Internal (semgen / compiled dispatch): emit the instruction's
     * value immediate and displacement as loads from the parameter
     * block (param_block below) instead of baking the encoding's
     * constants into the program, so one generated handler serves
     * every encoding that shares the row's structural shape. Register
     * numbers, operand form, length and prefixes stay baked — only
     * *values* are parameterized. Never set by user-facing options;
     * with it false, built programs are byte-identical to before.
     */
    bool generic_params = false;
};

/**
 * Parameter block read by generic-params programs. Lives in the
 * instruction-buffer region just past the decoder scratch (+0x40..0x4b,
 * decoder_ir.h) inside HiFiEmulator's 0x100-byte scratch window.
 */
namespace param_block {
constexpr u32 kImm = arch::layout::kInsnBufBase + 0x60;  ///< 4 bytes.
constexpr u32 kDisp = arch::layout::kInsnBufBase + 0x64; ///< 4 bytes.
} // namespace param_block

/**
 * Build the semantics program for @p insn. EIP in the state image must
 * point at the instruction; the program advances or redirects it.
 */
ir::Program build_semantics(const arch::DecodedInsn &insn,
                            const SemanticsOptions &options = {});

/**
 * Build the standalone descriptor-load helper program used to compute
 * the summary (paper's segment-descriptor-cache example): it reads 8
 * descriptor bytes at layout::kInsnBufBase (inputs) and writes the
 * parsed cache fields plus a validity classification to fixed scratch
 * addresses; see summarize_descriptor_load().
 */
ir::Program build_descriptor_load_helper();

/**
 * Explore the helper and fold it into a Summary whose outputs are, in
 * order: base(4), limit(4), access(1), db(1), fault_class(1) where
 * fault_class is 0 = loadable, 1 = #GP (bad type), 2 = #NP (not
 * present).
 */
symexec::Summary
summarize_descriptor_load(symexec::VarPool &pool,
                          symexec::ExplorerConfig config = {});

/** Scratch addresses used by the descriptor-load helper. */
namespace desc_helper {
constexpr u32 kInputBytes = arch::layout::kInsnBufBase; ///< 8 bytes.
constexpr u32 kOutBase = 0x12000000;
constexpr u32 kOutLimit = 0x12000004;
constexpr u32 kOutAccess = 0x12000008;
constexpr u32 kOutDb = 0x12000009;
constexpr u32 kOutFault = 0x1200000a;
} // namespace desc_helper

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_SEMANTICS_H
