/**
 * @file
 * Semantics-builder core: state access, fault plumbing, segmentation,
 * paging, flags, stack, and segment loading. The per-Op generators
 * live in semantics_ops.cpp.
 */
#include "hifi/ctx.h"

#include "arch/paging.h"

namespace pokeemu::hifi {

using arch::kNumGprs;

namespace {

ExprRef
imm32(u64 v)
{
    return E::constant(32, v);
}

ExprRef
bit_of(const ExprRef &value, unsigned pos)
{
    return E::extract(value, pos, 1);
}

} // namespace

Ctx::Ctx(const DecodedInsn &insn, const SemanticsOptions &options)
    : b_(std::string("sem_") +
         (insn.desc ? insn.desc->mnemonic : "bad")),
      insn_(insn), opt_(options)
{
}

// ---------------------------------------------------------------------
// Raw state access.
// ---------------------------------------------------------------------

ExprRef
Ctx::ld8(u32 addr)
{
    return b_.load(imm32(addr), 1);
}

ExprRef
Ctx::ld16(u32 addr)
{
    return b_.load(imm32(addr), 2);
}

ExprRef
Ctx::ld32(u32 addr)
{
    return b_.load(imm32(addr), 4);
}

void
Ctx::st8(u32 addr, const ExprRef &v)
{
    b_.store(imm32(addr), 1, v);
}

void
Ctx::st16(u32 addr, const ExprRef &v)
{
    b_.store(imm32(addr), 2, v);
}

void
Ctx::st32(u32 addr, const ExprRef &v)
{
    b_.store(imm32(addr), 4, v);
}

// ---------------------------------------------------------------------
// Registers and flags.
// ---------------------------------------------------------------------

ExprRef
Ctx::gpr(unsigned r)
{
    assert(r < kNumGprs);
    return ld32(layout::gpr_addr(r));
}

void
Ctx::set_gpr(unsigned r, const ExprRef &v)
{
    assert(r < kNumGprs);
    st32(layout::gpr_addr(r), v);
}

ExprRef
Ctx::gpr16(unsigned r)
{
    return ld16(layout::gpr_addr(r));
}

void
Ctx::set_gpr16(unsigned r, const ExprRef &v)
{
    st16(layout::gpr_addr(r), v);
}

ExprRef
Ctx::gpr8(unsigned r)
{
    assert(r < 8);
    // AL CL DL BL are the low bytes of regs 0..3; AH CH DH BH the
    // second bytes of regs 0..3.
    const u32 addr = r < 4 ? layout::gpr_addr(r)
                           : layout::gpr_addr(r - 4) + 1;
    return ld8(addr);
}

void
Ctx::set_gpr8(unsigned r, const ExprRef &v)
{
    assert(r < 8);
    const u32 addr = r < 4 ? layout::gpr_addr(r)
                           : layout::gpr_addr(r - 4) + 1;
    st8(addr, v);
}

ExprRef
Ctx::reg_operand(unsigned r, unsigned width)
{
    switch (width) {
      case 8: return gpr8(r);
      case 16: return gpr16(r);
      case 32: return gpr(r);
    }
    panic("bad register width");
}

void
Ctx::set_reg_operand(unsigned r, unsigned width, const ExprRef &v)
{
    switch (width) {
      case 8: set_gpr8(r, v); return;
      case 16: set_gpr16(r, v); return;
      case 32: set_gpr(r, v); return;
    }
    panic("bad register width");
}

ExprRef
Ctx::eflags()
{
    return ld32(layout::kEflagsAddr);
}

void
Ctx::set_eflags(const ExprRef &v)
{
    // Bit 1 is architecturally fixed to one; bits 3/5/15 to zero.
    ExprRef cleaned = E::bor(
        E::band(v, imm32(~(0x8028u))), imm32(arch::kFlagFixed1));
    st32(layout::kEflagsAddr, cleaned);
}

ExprRef
Ctx::flag(unsigned pos)
{
    return bit_of(eflags(), pos);
}

// ---------------------------------------------------------------------
// Segment cache fields.
// ---------------------------------------------------------------------

ExprRef
Ctx::seg_sel(unsigned s)
{
    return ld16(layout::seg_addr(s, layout::kSegSelector));
}

ExprRef
Ctx::seg_base(unsigned s)
{
    return ld32(layout::seg_addr(s, layout::kSegBase));
}

ExprRef
Ctx::seg_limit(unsigned s)
{
    return ld32(layout::seg_addr(s, layout::kSegLimit));
}

ExprRef
Ctx::seg_access(unsigned s)
{
    return ld8(layout::seg_addr(s, layout::kSegAccess));
}

ExprRef
Ctx::seg_db(unsigned s)
{
    return ld8(layout::seg_addr(s, layout::kSegDb));
}

// ---------------------------------------------------------------------
// Faults.
// ---------------------------------------------------------------------

void
Ctx::fault_if(const ExprRef &cond, u8 vector, const ExprRef &error_code,
              bool has_error, const ExprRef &cr2, bool expect_decided)
{
    Label fault = b_.label();
    std::string note = std::string("fault #") + std::to_string(vector);
    // The generic templates knowingly degenerate for particular
    // encodings (a wrap check on a constant offset folds constant; a
    // re-checked segment is implied by its first check). The markers
    // acknowledge the ir_lint findings such a check produces.
    const bool decided = expect_decided || cond->is_const();
    if (decided)
        note += "; lint: allow-const-branch";
    pending_faults_.push_back({fault, vector, error_code, has_error,
                               cr2, decided});
    b_.if_goto(cond, fault, note);
    if (decided && !(cond->is_const() && cond->value() == 0)) {
        b_.comment("continuation of a statically-decided fault "
                   "check; lint: allow-dataflow-unreachable");
    }
}

void
Ctx::fault_now(u8 vector, const ExprRef &error_code, bool has_error,
               const ExprRef &cr2)
{
    Label fault = b_.label();
    pending_faults_.push_back({fault, vector, error_code, has_error,
                               cr2});
    b_.jmp(fault);
}

void
Ctx::flush_faults()
{
    for (const PendingFault &f : pending_faults_) {
        b_.bind(f.label);
        if (f.statically_dead) {
            b_.comment("fault dispatch for a statically-decided "
                       "check; lint: allow-dataflow-unreachable");
        }
        st8(layout::kExcVectorAddr, E::constant(8, f.vector));
        st8(layout::kExcHasErrorAddr,
            E::constant(8, f.has_error ? 1 : 0));
        st32(layout::kExcErrorAddr,
             f.error_code ? f.error_code : imm32(0));
        if (f.cr2)
            st32(layout::kCr2Addr, f.cr2);
        st8(layout::kHaltedAddr, E::constant(8, 1));
        b_.halt(halt_exception_code(f.vector));
    }
    pending_faults_.clear();
}

// ---------------------------------------------------------------------
// Segmentation.
// ---------------------------------------------------------------------

ExprRef
Ctx::seg_check(unsigned s, const ExprRef &offset, unsigned size,
               bool write)
{
    const u8 vector = s == arch::kSs ? arch::kExcSs : arch::kExcGp;
    // Checks live with their access, as in interpreter
    // implementations, so a program touching the same segment twice
    // re-checks it; the dataflow facts decide the repeats on every
    // path where the first check passed, and the lint markers
    // acknowledge that.
    const bool recheck = !seg_checked_.insert(s).second;
    ExprRef sel = b_.assign(seg_sel(s), "selector");
    // Null segment is unusable.
    fault_if(E::eq(E::band(sel, E::constant(16, 0xfffc)),
                   E::constant(16, 0)),
             vector, imm32(0), true, nullptr, recheck);

    ExprRef acc = b_.assign(seg_access(s), "access byte");
    // Cached descriptor must be present.
    fault_if(E::eq(bit_of(acc, 7), E::bool_const(false)), vector,
             imm32(0), true, nullptr, recheck);

    const ExprRef is_code = bit_of(acc, 3);
    const ExprRef rw = bit_of(acc, 1);
    if (write) {
        // Writes require a writable data segment.
        fault_if(E::lor(E::eq(is_code, E::bool_const(true)),
                        E::eq(rw, E::bool_const(false))),
                 vector, imm32(0), true, nullptr, recheck);
    } else {
        // Reads fault only on execute-only code segments.
        fault_if(E::land(is_code, E::lnot(rw)), vector, imm32(0), true,
                 nullptr, recheck);
    }

    ExprRef limit = b_.assign(seg_limit(s), "limit");
    const ExprRef expand_down =
        E::land(E::lnot(is_code), bit_of(acc, 2));
    const ExprRef last_expr = E::add(offset, imm32(size - 1));
    ExprRef last = b_.assign(last_expr, "last byte offset");
    // Wrap of offset+size-1 past 2^32 is always out of range. A
    // single-byte access cannot wrap (last aliases offset itself).
    fault_if(E::ult(last, offset), vector, imm32(0), true, nullptr,
             size == 1);
    // The expand-down/expand-up cases are separate code paths, as in
    // interpreter implementations (each check is its own branch).
    Label down = b_.label(), up = b_.label(), limit_ok = b_.label();
    b_.cjmp(expand_down, down, up,
            recheck ? "expand-down segment; lint: allow-const-branch"
                    : "expand-down segment");
    b_.bind(up);
    // Expand-up: last must be <= limit. No limit is below a constant
    // zero last, so the check is decided for such encodings.
    fault_if(E::ult(limit, last), vector, imm32(0), true, nullptr,
             last_expr->is_const() && last_expr->value() == 0);
    b_.jmp(limit_ok);
    b_.bind(down);
    if (recheck) {
        b_.comment("expand-down arm of a re-checked segment; "
                   "lint: allow-dataflow-unreachable");
    }
    // Expand-down: valid range is (limit, upper]; upper from D/B.
    // A zero offset can never exceed the limit, so the check is
    // decided for zero-offset encodings.
    fault_if(E::ule(offset, limit), vector, imm32(0), true, nullptr,
             offset->is_const() && offset->value() == 0);
    const ExprRef upper = E::ite(
        E::eq(seg_db(s), E::constant(8, 0)),
        imm32(0xffff), imm32(0xffffffff));
    // Both possible uppers are at least 0xffff, so a small constant
    // last can never exceed either one.
    fault_if(E::ult(upper, last), vector, imm32(0), true, nullptr,
             last_expr->is_const() && last_expr->value() <= 0xffff);
    b_.jmp(limit_ok);
    b_.bind(limit_ok);

    return b_.assign(E::add(seg_base(s), offset), "linear address");
}

// ---------------------------------------------------------------------
// Paging.
// ---------------------------------------------------------------------

ExprRef
Ctx::translate(const ExprRef &linear, bool write)
{
    ExprRef lin = b_.assign(linear, "linear");
    ExprRef cr0 = b_.assign(ld32(layout::kCr0Addr), "cr0");

    // Paging disabled: identity map. Emit as an IR-level branch so
    // CR0.PG being symbolic explores both configurations.
    Label paged = b_.label(), flat = b_.label(), join_store = b_.label();
    // Result is communicated through a scratch slot in the state image
    // region (IR temps are SSA, so joins go through memory).
    const u32 scratch = layout::kInsnBufBase + 0x20;
    b_.cjmp(bit_of(cr0, 31), paged, flat, "CR0.PG");

    b_.bind(flat);
    st32(scratch, lin);
    b_.jmp(join_store);

    b_.bind(paged);
    {
        ExprRef cr3 = b_.assign(ld32(layout::kCr3Addr), "cr3");
        const ExprRef err_base = imm32(write ? arch::kPfErrWrite : 0);

        ExprRef pde_off = E::band(
            E::lshr(lin, imm32(22)), imm32(0x3ff));
        ExprRef pde_addr = b_.assign(
            E::add(imm32(layout::kGuestPhysBase),
                   E::band(E::add(E::band(cr3, imm32(0xfffff000)),
                                  E::shl(pde_off, imm32(2))),
                           imm32(arch::kPhysMemSize - 1))),
            "pde address");
        ExprRef pde = b_.assign(b_.load(pde_addr, 4), "pde");
        fault_if(E::eq(bit_of(pde, 0), E::bool_const(false)),
                 arch::kExcPf, err_base, true, lin);

        ExprRef pte_off = E::band(
            E::lshr(lin, imm32(12)), imm32(0x3ff));
        ExprRef pte_addr = b_.assign(
            E::add(imm32(layout::kGuestPhysBase),
                   E::band(E::add(E::band(pde, imm32(0xfffff000)),
                                  E::shl(pte_off, imm32(2))),
                           imm32(arch::kPhysMemSize - 1))),
            "pte address");
        ExprRef pte = b_.assign(b_.load(pte_addr, 4), "pte");
        fault_if(E::eq(bit_of(pte, 0), E::bool_const(false)),
                 arch::kExcPf, err_base, true, lin);

        if (write) {
            // Supervisor (CPL0) writes honor read-only PTEs only when
            // CR0.WP is set.
            const ExprRef rw_ok =
                E::land(bit_of(pde, 1), bit_of(pte, 1));
            const ExprRef wp = bit_of(cr0, 16);
            fault_if(E::land(wp, E::lnot(rw_ok)), arch::kExcPf,
                     E::bor(err_base, imm32(arch::kPfErrPresent)), true,
                     lin);
        }

        // Accessed / dirty updates (hardware sets them on the walk).
        b_.store(pde_addr, 4, E::bor(pde, imm32(arch::kPteAccessed)));
        ExprRef new_pte = E::bor(pte, imm32(arch::kPteAccessed));
        if (write)
            new_pte = E::bor(new_pte, imm32(arch::kPteDirty));
        b_.store(pte_addr, 4, new_pte);

        ExprRef phys = E::bor(E::band(pte, imm32(0xfffff000)),
                              E::band(lin, imm32(0xfff)));
        st32(scratch, phys);
    }
    b_.jmp(join_store);

    b_.bind(join_store);
    ExprRef phys = b_.assign(ld32(scratch), "physical");
    return b_.assign(
        E::add(imm32(layout::kGuestPhysBase),
               E::band(phys, imm32(arch::kPhysMemSize - 1))),
        "host address");
}

ExprRef
Ctx::mem_read(unsigned s, const ExprRef &offset, unsigned size)
{
    ExprRef lin = seg_check(s, offset, size, false);
    ExprRef host = translate(lin, false);
    return b_.load(host, size);
}

PreparedWrite
Ctx::prepare_write(unsigned s, const ExprRef &offset, unsigned size)
{
    ExprRef lin = seg_check(s, offset, size, true);
    ExprRef host = translate(lin, true);
    return {host, size};
}

void
Ctx::commit_write(const PreparedWrite &w, const ExprRef &value)
{
    b_.store(w.host_addr, w.size, value);
}

void
Ctx::mem_write(unsigned s, const ExprRef &offset, unsigned size,
               const ExprRef &value)
{
    commit_write(prepare_write(s, offset, size), value);
}

// ---------------------------------------------------------------------
// ModRM operands.
// ---------------------------------------------------------------------

unsigned
Ctx::effective_segment() const
{
    if (insn_.seg_override >= 0)
        return static_cast<unsigned>(insn_.seg_override);
    // Default segment: SS when the base register is EBP or ESP.
    if (insn_.has_sib) {
        if (insn_.base == arch::kEbp && insn_.mod == 0)
            return arch::kDs; // disp32 base, DS default.
        if (insn_.base == arch::kEsp || insn_.base == arch::kEbp)
            return arch::kSs;
        return arch::kDs;
    }
    if (insn_.mod != 0 && insn_.rm == arch::kEbp)
        return arch::kSs;
    return arch::kDs;
}

ExprRef
Ctx::imm_v(unsigned width)
{
    if (!generic())
        return E::constant(width, insn_.imm);
    return width == 32 ? imm_param_
                       : E::extract(imm_param_, 0, width);
}

ExprRef
Ctx::imm_sext8_v(unsigned width)
{
    if (!generic()) {
        return E::constant(
            width, static_cast<u64>(sign_extend(insn_.imm & 0xff, 8)));
    }
    return E::sext(E::extract(imm_param_, 0, 8), width);
}

ExprRef
Ctx::shift_count_v()
{
    if (!generic())
        return E::constant(8, insn_.imm & 0x1f);
    return E::band(E::extract(imm_param_, 0, 8), E::constant(8, 0x1f));
}

ExprRef
Ctx::imm_low8_32_v()
{
    if (!generic())
        return imm32(insn_.imm & 0xff);
    return E::zext(E::extract(imm_param_, 0, 8), 32);
}

ExprRef
Ctx::disp_v()
{
    return generic() ? disp_param_ : imm32(insn_.disp);
}

ExprRef
Ctx::effective_address()
{
    assert(insn_.is_memory_operand());
    ExprRef ea = disp_v();
    if (insn_.has_sib) {
        // Base register (none when base==5 with mod==0: disp32 only).
        if (!(insn_.base == 5 && insn_.mod == 0))
            ea = E::add(ea, gpr(insn_.base));
        // Index register (none when index==4).
        if (insn_.index != 4) {
            ea = E::add(ea, E::shl(gpr(insn_.index),
                                   imm32(insn_.scale)));
        }
    } else if (!(insn_.mod == 0 && insn_.rm == 5)) {
        ea = E::add(ea, gpr(insn_.rm));
    }
    return b_.assign(ea, "effective address");
}

ExprRef
Ctx::read_rm(unsigned width)
{
    if (insn_.mod == 3)
        return reg_operand(insn_.rm, width);
    return mem_read(effective_segment(), effective_address(),
                    width / 8);
}

ExprRef
Ctx::read_rm_for_write(unsigned width, std::optional<PreparedWrite> &pw)
{
    if (insn_.mod == 3) {
        pw.reset();
        return reg_operand(insn_.rm, width);
    }
    ExprRef ea = effective_address();
    const unsigned seg = effective_segment();
    // Read-modify-write destination: check for write up front so a
    // non-writable destination faults before any state changes.
    pw = prepare_write(seg, ea, width / 8);
    return b_.load(pw->host_addr, width / 8);
}

void
Ctx::write_rm_commit(const std::optional<PreparedWrite> &pw,
                     unsigned width, const ExprRef &v)
{
    if (pw) {
        commit_write(*pw, v);
    } else {
        set_reg_operand(insn_.rm, width, v);
    }
}

// ---------------------------------------------------------------------
// Flags.
// ---------------------------------------------------------------------

ExprRef
Ctx::parity(const ExprRef &res)
{
    ExprRef x = E::extract(res, 0, 8);
    x = E::bxor(x, E::lshr(x, E::constant(8, 4)));
    x = E::bxor(x, E::lshr(x, E::constant(8, 2)));
    x = E::bxor(x, E::lshr(x, E::constant(8, 1)));
    return E::lnot(bit_of(x, 0));
}

void
Ctx::write_flags(const FlagSet &f)
{
    u32 mask = 0;
    if (f.cf) mask |= arch::kFlagCf;
    if (f.pf) mask |= arch::kFlagPf;
    if (f.af) mask |= arch::kFlagAf;
    if (f.zf) mask |= arch::kFlagZf;
    if (f.sf) mask |= arch::kFlagSf;
    if (f.of) mask |= arch::kFlagOf;
    if (mask == 0)
        return;
    ExprRef fl = E::band(eflags(), imm32(~static_cast<u64>(mask)));
    auto add_bit = [&](const ExprRef &bit, unsigned pos) {
        if (bit)
            fl = E::bor(fl, E::shl(E::zext(bit, 32), imm32(pos)));
    };
    add_bit(f.cf, 0);
    add_bit(f.pf, 2);
    add_bit(f.af, 4);
    add_bit(f.zf, 6);
    add_bit(f.sf, 7);
    add_bit(f.of, 11);
    set_eflags(fl);
}

Ctx::FlagSet
Ctx::flags_logic(const ExprRef &res)
{
    FlagSet f;
    const unsigned w = res->width();
    f.cf = E::bool_const(false);
    f.of = E::bool_const(false);
    f.af = E::bool_const(false);
    f.pf = parity(res);
    f.zf = E::eq(res, E::constant(w, 0));
    f.sf = bit_of(res, w - 1);
    return f;
}

Ctx::FlagSet
Ctx::flags_add(const ExprRef &a, const ExprRef &b, const ExprRef &cin)
{
    const unsigned w = a->width();
    ExprRef wide = E::add(E::add(E::zext(a, w + 2), E::zext(b, w + 2)),
                          E::zext(cin, w + 2));
    ExprRef res = E::extract(wide, 0, w);
    FlagSet f;
    f.cf = bit_of(wide, w);
    // OF: operands agree in sign, result disagrees.
    f.of = E::land(E::lnot(E::bxor(bit_of(a, w - 1), bit_of(b, w - 1))),
                   E::bxor(bit_of(a, w - 1), bit_of(res, w - 1)));
    f.af = bit_of(E::bxor(E::bxor(a, b), res), 4);
    f.pf = parity(res);
    f.zf = E::eq(res, E::constant(w, 0));
    f.sf = bit_of(res, w - 1);
    return f;
}

Ctx::FlagSet
Ctx::flags_sub(const ExprRef &a, const ExprRef &b, const ExprRef &bin)
{
    const unsigned w = a->width();
    ExprRef wide = E::sub(E::sub(E::zext(a, w + 2), E::zext(b, w + 2)),
                          E::zext(bin, w + 2));
    ExprRef res = E::extract(wide, 0, w);
    FlagSet f;
    f.cf = bit_of(wide, w); // Borrow out.
    f.of = E::land(E::bxor(bit_of(a, w - 1), bit_of(b, w - 1)),
                   E::bxor(bit_of(a, w - 1), bit_of(res, w - 1)));
    f.af = bit_of(E::bxor(E::bxor(a, b), res), 4);
    f.pf = parity(res);
    f.zf = E::eq(res, E::constant(w, 0));
    f.sf = bit_of(res, w - 1);
    return f;
}

ExprRef
Ctx::cond_cc(unsigned cc)
{
    ExprRef fl = b_.assign(eflags(), "eflags for cc");
    const ExprRef cf = bit_of(fl, 0);
    const ExprRef pf = bit_of(fl, 2);
    const ExprRef zf = bit_of(fl, 6);
    const ExprRef sf = bit_of(fl, 7);
    const ExprRef of = bit_of(fl, 11);
    ExprRef base;
    switch (cc >> 1) {
      case 0: base = of; break;                        // o / no
      case 1: base = cf; break;                        // b / nb
      case 2: base = zf; break;                        // z / nz
      case 3: base = E::lor(cf, zf); break;            // be / nbe
      case 4: base = sf; break;                        // s / ns
      case 5: base = pf; break;                        // p / np
      case 6: base = E::bxor(sf, of); break;           // l / nl
      case 7: base = E::lor(zf, E::bxor(sf, of)); break; // le / nle
      default: panic("bad cc");
    }
    return (cc & 1) ? E::lnot(base) : base;
}

// ---------------------------------------------------------------------
// Stack.
// ---------------------------------------------------------------------

void
Ctx::push32(const ExprRef &value)
{
    ExprRef esp = gpr(arch::kEsp);
    ExprRef new_esp = b_.assign(E::sub(esp, imm32(4)), "new esp");
    mem_write(arch::kSs, new_esp, 4, value);
    set_gpr(arch::kEsp, new_esp);
}

ExprRef
Ctx::stack_read(const ExprRef &esp_offset, unsigned size)
{
    ExprRef esp = gpr(arch::kEsp);
    return mem_read(arch::kSs, E::add(esp, esp_offset), size);
}

// ---------------------------------------------------------------------
// Completion.
// ---------------------------------------------------------------------

void
Ctx::commit_eip_advance()
{
    ExprRef eip = ld32(layout::kEipAddr);
    st32(layout::kEipAddr, E::add(eip, imm32(insn_.length)));
}

void
Ctx::set_eip(const ExprRef &target)
{
    st32(layout::kEipAddr, target);
}

void
Ctx::done()
{
    commit_eip_advance();
    b_.halt(kHaltOk);
}

// ---------------------------------------------------------------------
// Segment loading.
// ---------------------------------------------------------------------

void
Ctx::load_segment(unsigned s, const ExprRef &selector)
{
    ExprRef sel = b_.assign(selector, "new selector");
    const ExprRef sel32 = E::zext(sel, 32);
    const ExprRef index = E::lshr(sel32, imm32(3));
    const ExprRef is_null =
        E::eq(E::band(sel, E::constant(16, 0xfffc)), E::constant(16, 0));

    Label finish = b_.label();
    if (s == arch::kSs) {
        // Loading SS with a null selector faults immediately.
        fault_if(is_null, arch::kExcGp, imm32(0), true);
    } else {
        Label null_load = b_.label(), real_load = b_.label();
        b_.cjmp(is_null, null_load, real_load, "null selector");
        b_.bind(null_load);
        // Null selector: mark the cache unusable (clear present).
        st16(layout::seg_addr(s, layout::kSegSelector), sel);
        st32(layout::seg_addr(s, layout::kSegBase), imm32(0));
        st32(layout::seg_addr(s, layout::kSegLimit), imm32(0));
        st8(layout::seg_addr(s, layout::kSegAccess), E::constant(8, 0));
        st8(layout::seg_addr(s, layout::kSegDb), E::constant(8, 0));
        b_.jmp(finish);
        b_.bind(real_load);
    }

    // TI=1 (LDT) is outside the subset: #GP(selector).
    fault_if(E::eq(bit_of(sel, 2), E::bool_const(true)), arch::kExcGp,
             E::band(sel32, imm32(0xfffc)), true);
    // Index must be inside the GDT limit: index*8 + 7 <= gdtr.limit.
    ExprRef gdt_limit = E::zext(ld16(layout::kGdtrLimitAddr), 32);
    fault_if(E::ult(gdt_limit,
                    E::add(E::shl(index, imm32(3)), imm32(7))),
             arch::kExcGp, E::band(sel32, imm32(0xfffc)), true);

    // Read the 8 descriptor bytes (via physical memory: the GDT base
    // is a linear address; the subset requires it to be identity-
    // mapped, as the baseline sets up).
    ExprRef gdt_base = ld32(layout::kGdtrBaseAddr);
    ExprRef desc_addr = b_.assign(
        E::add(imm32(layout::kGuestPhysBase),
               E::band(E::add(gdt_base, E::shl(index, imm32(3))),
                       imm32(arch::kPhysMemSize - 1))),
        "descriptor address");

    ExprRef b0 = b_.load(E::add(desc_addr, imm32(0)), 1);
    ExprRef b1 = b_.load(E::add(desc_addr, imm32(1)), 1);
    ExprRef b2 = b_.load(E::add(desc_addr, imm32(2)), 1);
    ExprRef b3 = b_.load(E::add(desc_addr, imm32(3)), 1);
    ExprRef b4 = b_.load(E::add(desc_addr, imm32(4)), 1);
    ExprRef b5 = b_.load(E::add(desc_addr, imm32(5)), 1);
    ExprRef b6 = b_.load(E::add(desc_addr, imm32(6)), 1);
    ExprRef b7 = b_.load(E::add(desc_addr, imm32(7)), 1);

    ExprRef base_out, limit_out, access_out, db_out, fault_class;
    if (opt_.descriptor_summary) {
        // Substitute the pre-computed summary (paper §3.3.2): map the
        // helper's input variables (desc byte i) to our loaded bytes.
        const symexec::Summary &sum = *opt_.descriptor_summary;
        assert(sum.outputs.size() == 5);
        const ExprRef bytes[8] = {b0, b1, b2, b3, b4, b5, b6, b7};
        auto instantiate = [&](const ExprRef &tmpl) {
            return ir::substitute(
                tmpl, [&](const ir::Expr &leaf) -> ExprRef {
                    if (leaf.kind() != ir::ExprKind::Var)
                        return nullptr;
                    // Helper input vars are named desc_byte_<i>.
                    const std::string &n = leaf.name();
                    if (n.rfind("desc_byte_", 0) == 0) {
                        const unsigned i = n[10] - '0';
                        assert(i < 8);
                        return bytes[i];
                    }
                    return nullptr;
                });
        };
        base_out = b_.assign(instantiate(sum.outputs[0]), "sum base");
        limit_out = b_.assign(instantiate(sum.outputs[1]), "sum limit");
        access_out = b_.assign(instantiate(sum.outputs[2]),
                               "sum access");
        db_out = b_.assign(instantiate(sum.outputs[3]), "sum db");
        fault_class = b_.assign(instantiate(sum.outputs[4]),
                                "sum fault class");
    } else {
        // Inline descriptor parse with interpreter-style control flow
        // (the multi-path computation the summary replaces: each run
        // through a segment load multiplies the search space, which is
        // exactly what §3.3.2 avoids).
        const u32 scratch_limit = layout::kInsnBufBase + 0x30;
        const u32 scratch_class = layout::kInsnBufBase + 0x34;
        ExprRef limit_raw = b_.assign(
            E::bor(E::zext(E::concat(b1, b0), 32),
                   E::shl(E::zext(E::band(b6, E::constant(8, 0x0f)),
                                  32),
                          imm32(16))),
            "raw limit");
        Label coarse = b_.label(), fine = b_.label(),
              limit_done = b_.label();
        b_.cjmp(bit_of(b6, 7), coarse, fine, "G bit");
        b_.bind(coarse);
        st32(scratch_limit,
             E::bor(E::shl(limit_raw, imm32(12)), imm32(0xfff)));
        b_.jmp(limit_done);
        b_.bind(fine);
        st32(scratch_limit, limit_raw);
        b_.jmp(limit_done);
        b_.bind(limit_done);
        limit_out = b_.assign(ld32(scratch_limit), "effective limit");

        base_out = b_.assign(
            E::bor(E::zext(b2, 32),
                   E::bor(E::shl(E::zext(b3, 32), imm32(8)),
                          E::bor(E::shl(E::zext(b4, 32), imm32(16)),
                                 E::shl(E::zext(b7, 32), imm32(24))))),
            "base");
        access_out = b_.assign(b5, "access");
        db_out = b_.assign(
            E::zext(bit_of(b6, 6), 8), "db");

        // Segment-kind-independent classification: 1 = system segment
        // (#GP), 2 = not present (#NP/#SS), 0 = code/data and present.
        // Branching control flow, as in the interpreter source.
        Label sys = b_.label(), not_sys = b_.label(),
              absent = b_.label(), present_l = b_.label(),
              class_done = b_.label();
        b_.cjmp(bit_of(access_out, 4), not_sys, sys, "S bit");
        b_.bind(sys);
        st8(scratch_class, E::constant(8, 1));
        b_.jmp(class_done);
        b_.bind(not_sys);
        b_.cjmp(bit_of(access_out, 7), present_l, absent, "P bit");
        b_.bind(absent);
        st8(scratch_class, E::constant(8, 2));
        b_.jmp(class_done);
        b_.bind(present_l);
        st8(scratch_class, E::constant(8, 0));
        b_.jmp(class_done);
        b_.bind(class_done);
        fault_class = b_.assign(ld8(scratch_class), "fault class");
    }

    // Segment-kind-specific type rules, applied uniformly to both the
    // inline and the summarized parse.
    {
        const ExprRef is_code = bit_of(access_out, 3);
        const ExprRef rw = bit_of(access_out, 1);
        ExprRef bad_type = E::eq(fault_class, E::constant(8, 1));
        if (s == arch::kSs) {
            // SS requires a writable data segment.
            bad_type = E::lor(bad_type,
                              E::lor(is_code, E::lnot(rw)));
        } else {
            // Data segments loadable; code only if readable.
            bad_type = E::lor(bad_type,
                              E::land(is_code, E::lnot(rw)));
        }
        fault_if(bad_type, arch::kExcGp,
                 E::band(sel32, imm32(0xfffc)), true);
        fault_if(E::eq(fault_class, E::constant(8, 2)),
                 s == arch::kSs ? arch::kExcSs : arch::kExcNp,
                 E::band(sel32, imm32(0xfffc)), true);
    }

    // Commit the cache and set the descriptor's accessed bit in
    // memory, as hardware does.
    st16(layout::seg_addr(s, layout::kSegSelector), sel);
    st32(layout::seg_addr(s, layout::kSegBase), base_out);
    st32(layout::seg_addr(s, layout::kSegLimit), limit_out);
    st8(layout::seg_addr(s, layout::kSegAccess),
        E::bor(access_out, E::constant(8, arch::kDescAccessed)));
    st8(layout::seg_addr(s, layout::kSegDb), db_out);
    b_.store(E::add(desc_addr, imm32(5)), 1,
             E::bor(b5, E::constant(8, arch::kDescAccessed)));
    b_.jmp(finish);

    b_.bind(finish);
    b_.comment("segment load complete");
}

// ---------------------------------------------------------------------
// Build entry.
// ---------------------------------------------------------------------

ir::Program
Ctx::build()
{
    if (opt_.generic_params) {
        // Entry-block param loads so every later use is dominated.
        // Unused ones are constant-address loads the optimizer's DCE
        // removes (compiled units always build with opt = On).
        imm_param_ = b_.load(imm32(param_block::kImm), 4,
                             ir::ConcretizePolicy::SingleRandom,
                             "imm param");
        disp_param_ = b_.load(imm32(param_block::kDisp), 4,
                              ir::ConcretizePolicy::SingleRandom,
                              "disp param");
    }
    gen();
    flush_faults();
    return b_.finish();
}

ir::Program
build_semantics(const arch::DecodedInsn &insn,
                const SemanticsOptions &options)
{
    assert(insn.desc);
    Ctx ctx(insn, options);
    ir::Program program = ctx.build();
    if (options.opt != analysis::OptMode::Off)
        program = analysis::optimize_program(program).program;
    return program;
}

} // namespace pokeemu::hifi
