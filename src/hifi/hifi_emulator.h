/**
 * @file
 * The Hi-Fi emulator (Bochs analog): a faithful interpreter whose
 * decoder and per-instruction semantics are the same IR programs the
 * symbolic explorer walks — what you explore is what you run.
 *
 * Concrete execution interprets those programs against the machine-
 * state byte image and guest physical RAM (paper §2: "Bochs is an
 * interpreter"; §5.1 emulator execution with halt/exception
 * interception). Instruction fetch (CS limit check + page walk) is
 * the hand-written harness part, as in the paper where exploration
 * starts after fetch/decode.
 */
#ifndef POKEEMU_HIFI_HIFI_EMULATOR_H
#define POKEEMU_HIFI_HIFI_EMULATOR_H

#include <map>
#include <memory>

#include "arch/snapshot.h"
#include "hifi/compiled.h"
#include "hifi/decoder_ir.h"
#include "hifi/semantics.h"
#include "ir/eval.h"

namespace pokeemu::hifi {

/** Why execution stopped. */
enum class StopReason : u8 {
    Halted,     ///< hlt executed.
    Exception,  ///< A fault was recorded (abstract halting handler).
    InsnLimit,  ///< Budget exhausted (runaway guard).
};

/** See file comment. */
class HiFiEmulator : public ir::ConcreteMemory
{
  public:
    explicit HiFiEmulator(SemanticsOptions options = {});
    ~HiFiEmulator() override;

    /** Load CPU state and a full physical-memory image. */
    void reset(const arch::CpuState &cpu, const std::vector<u8> &ram);

    /** Execute one instruction. Returns false when already stopped. */
    bool step();

    /** Run until hlt/exception or @p max_insns. */
    StopReason run(u64 max_insns = 1u << 20);

    /** Current CPU state (unpacked from the byte image). */
    arch::CpuState cpu() const;

    arch::Snapshot snapshot() const;

    /** Snapshot into a reusable buffer (capacity-preserving). */
    void snapshot_into(arch::Snapshot &out) const;

    /** Instructions retired since reset. */
    u64 insn_count() const { return insn_count_; }

    /** Cycles charged since reset (timing/cost_model.h); 0 unless
     *  SemanticsOptions::timing is on. */
    u64 cycle_count() const { return cycles_; }

    /// @name Compiled-semantics dispatch accounting (since
    /// construction; SemanticsOptions::compiled selects the mode).
    /// @{
    u64 compiled_hits() const { return compiled_hits_; }
    u64 compiled_misses() const { return compiled_misses_; }
    /// @}

    /// @name ir::ConcreteMemory (the IR address space).
    /// @{
    u64 load(u32 addr, unsigned size) override;
    void store(u32 addr, unsigned size, u64 value) override;
    /// @}

  private:
    void record_exception(u8 vector, u32 error, bool has_error,
                          u32 cr2, bool set_cr2);
    u8 *resolve(u32 addr);

    /** Dispatch @p insn to its generated handler if one matches.
     *  Returns true when the instruction was fully executed (On) or
     *  executed and cross-checked (CrossCheck); false on a table miss
     *  (caller falls back to the interpreter). Throws
     *  FaultError(CodegenMismatch) on a stale table or a CrossCheck
     *  divergence. */
    bool step_compiled(const arch::DecodedInsn &insn);

    /// @name Cycle charging (mirrors DirectCpu::charge*: identical
    /// decisions for identical executions, so the backends' totals
    /// agree unless a timing defect is seeded).
    /// @{
    void charge(const arch::DecodedInsn &insn, u32 halt_code);
    void charge_fault_path();
    /// @}

    SemanticsOptions options_;
    std::array<u8, arch::layout::kCpuStateSize> state_{};
    std::array<u8, 0x100> scratch_{}; ///< Insn buffer + decoder state.
    std::vector<u8> ram_;
    ir::Program decoder_;
    std::map<std::vector<u8>, std::shared_ptr<const ir::Program>>
        semantics_cache_;
    u64 insn_count_ = 0;
    u64 cycles_ = 0;
    u64 compiled_hits_ = 0;
    u64 compiled_misses_ = 0;
    /** Staleness guard ran (table hash == compiled_expected_hash()). */
    bool compiled_checked_ = false;
};

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_HIFI_EMULATOR_H
