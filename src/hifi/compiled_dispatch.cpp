/**
 * @file
 * Compiled-semantics dispatch: shape matching against the generated
 * table. Separated from compiled.cpp because these functions reference
 * compiled_table(), which only exists in the semgen-generated
 * translation unit (linked as pokeemu_compiled after the core
 * library); tools/semgen itself must link without it.
 */
#include "hifi/compiled.h"

namespace pokeemu::hifi {

bool
shape_matches(const CompiledShape &shape, const arch::DecodedInsn &insn)
{
    if (shape.table_index != insn.table_index ||
        shape.length != insn.length || shape.lock != insn.lock ||
        shape.rep != insn.rep || shape.repne != insn.repne ||
        shape.seg_override != insn.seg_override ||
        shape.has_modrm != insn.has_modrm ||
        shape.has_sib != insn.has_sib) {
        return false;
    }
    if (shape.has_modrm && shape.modrm != insn.modrm)
        return false;
    if (shape.has_sib && shape.sib != insn.sib)
        return false;
    if (!shape.params_ok &&
        (shape.imm != insn.imm || shape.disp != insn.disp ||
         shape.imm_sel != insn.imm_sel)) {
        return false;
    }
    return true;
}

const CompiledEntry *
compiled_find(const arch::DecodedInsn &insn)
{
    const CompiledTable &table = compiled_table();
    if (insn.table_index < 0 ||
        static_cast<std::size_t>(insn.table_index) >= table.rows) {
        return nullptr;
    }
    const u32 begin = table.row_begin[insn.table_index];
    const u32 end = table.row_begin[insn.table_index + 1];
    for (u32 i = begin; i < end; ++i) {
        if (shape_matches(table.entries[i].shape, insn))
            return &table.entries[i];
    }
    return nullptr;
}

} // namespace pokeemu::hifi
