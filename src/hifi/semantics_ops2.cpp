/**
 * @file
 * Per-instruction semantics generators, part 2: control flow, far
 * pointer loads, group-3 unary/multiply/divide, system instructions,
 * bit operations, cmpxchg/xadd — plus the descriptor-load summary
 * helper (paper §3.3.2).
 */
#include "hifi/ctx.h"

namespace pokeemu::hifi {

using arch::Op;

namespace {

ExprRef
imm32(u64 v)
{
    return E::constant(32, v);
}

ExprRef
bit_of(const ExprRef &value, unsigned pos)
{
    return E::extract(value, pos, 1);
}

/** Branchless count-trailing-zeros of a 32-bit value (valid if != 0). */
ExprRef
expr_ctz32(const ExprRef &x)
{
    ExprRef v = x;
    ExprRef n = imm32(0);
    unsigned half = 16;
    while (half >= 1) {
        ExprRef low = E::extract(v, 0, half);
        ExprRef is_zero = E::eq(low, E::constant(half, 0));
        n = E::add(n, E::ite(is_zero, imm32(half), imm32(0)));
        v = E::ite(is_zero, E::lshr(v, imm32(half)), v);
        half /= 2;
    }
    return n;
}

/** Branchless index of the highest set bit (valid if != 0). */
ExprRef
expr_bsr32(const ExprRef &x)
{
    ExprRef v = x;
    ExprRef n = imm32(0);
    unsigned half = 16;
    while (half >= 1) {
        ExprRef high = E::lshr(v, imm32(half));
        ExprRef nonzero = E::ne(high, imm32(0));
        n = E::add(n, E::ite(nonzero, imm32(half), imm32(0)));
        v = E::ite(nonzero, high, v);
        half /= 2;
    }
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Control flow.
// ---------------------------------------------------------------------

void
Ctx::gen_control()
{
    switch (insn_.desc->op) {
      case Op::Ret: {
        ExprRef target = b_.assign(stack_read(imm32(0), 4), "return");
        set_gpr(arch::kEsp, E::add(gpr(arch::kEsp), imm32(4)));
        set_eip(target);
        b_.halt(kHaltOk);
        return;
      }
      case Op::RetImm16: {
        ExprRef target = b_.assign(stack_read(imm32(0), 4), "return");
        ExprRef pop = generic()
            ? E::add(imm32(4),
                     E::zext(E::extract(imm_v(32), 0, 16), 32))
            : imm32(4 + insn_.imm);
        set_gpr(arch::kEsp, E::add(gpr(arch::kEsp), pop));
        set_eip(target);
        b_.halt(kHaltOk);
        return;
      }
      case Op::CallRel32: {
        ExprRef eip = b_.assign(ld32(layout::kEipAddr), "eip");
        ExprRef next = b_.assign(E::add(eip, imm32(insn_.length)),
                                 "return address");
        push32(next);
        set_eip(E::add(next, imm_v(32)));
        b_.halt(kHaltOk);
        return;
      }
      case Op::JmpRel32:
      case Op::JmpRel8: {
        ExprRef eip = ld32(layout::kEipAddr);
        if (generic()) {
            ExprRef rel = insn_.desc->op == Op::JmpRel8
                ? imm_sext8_v(32)
                : imm_v(32);
            set_eip(E::add(E::add(eip, imm32(insn_.length)), rel));
        } else {
            const s64 rel = insn_.desc->op == Op::JmpRel8
                ? sign_extend(insn_.imm & 0xff, 8)
                : sign_extend(insn_.imm, 32);
            set_eip(E::add(eip, imm32(insn_.length +
                                      static_cast<u64>(rel))));
        }
        b_.halt(kHaltOk);
        return;
      }
      case Op::CallRm32: {
        ExprRef target = b_.assign(read_rm(32), "call target");
        ExprRef eip = ld32(layout::kEipAddr);
        push32(b_.assign(E::add(eip, imm32(insn_.length)),
                         "return address"));
        set_eip(target);
        b_.halt(kHaltOk);
        return;
      }
      case Op::JmpRm32: {
        set_eip(b_.assign(read_rm(32), "jump target"));
        b_.halt(kHaltOk);
        return;
      }
      case Op::Leave: {
        // ESP <- EBP; EBP <- pop. Atomic: the read through the new
        // stack top happens before either register is written.
        ExprRef ebp = b_.assign(gpr(arch::kEbp), "ebp");
        ExprRef val = b_.assign(mem_read(arch::kSs, ebp, 4),
                                "saved ebp");
        set_gpr(arch::kEsp, E::add(ebp, imm32(4)));
        set_gpr(arch::kEbp, val);
        done();
        return;
      }
      case Op::Int3:
        fault_now(arch::kExcBp, imm32(0), false);
        return;
      case Op::IntImm8:
        fault_now(static_cast<u8>(insn_.imm), imm32(0), false);
        return;
      case Op::Into: {
        Label trap = b_.label();
        pending_faults_.push_back({trap, arch::kExcOf, imm32(0), false,
                                   nullptr});
        Label no_trap = b_.label();
        b_.cjmp(flag(11), trap, no_trap, "into: OF");
        b_.bind(no_trap);
        done();
        return;
      }
      case Op::JmpFar:
      case Op::CallFar: {
        // Direct far transfer (ptr16:32), same-privilege only: the
        // target code descriptor is checked and CS reloaded. The
        // descriptor bytes are symbolic state, so exploration covers
        // the type/privilege/present/limit corner cases.
        const bool is_call = insn_.desc->op == Op::CallFar;
        const u16 sel = insn_.imm_sel;
        if ((sel & 0xfffc) == 0) {
            fault_now(arch::kExcGp, imm32(0), true);
            return;
        }
        if (sel & 0x4) {
            fault_now(arch::kExcGp, imm32(sel & 0xfffc), true);
            return;
        }
        const u32 index = sel >> 3;
        ExprRef gdt_limit = E::zext(ld16(layout::kGdtrLimitAddr), 32);
        fault_if(E::ult(gdt_limit, imm32(index * 8 + 7)),
                 arch::kExcGp, imm32(sel & 0xfffc), true);

        ExprRef gdt_base = ld32(layout::kGdtrBaseAddr);
        ExprRef desc_addr = b_.assign(
            E::add(imm32(layout::kGuestPhysBase),
                   E::band(E::add(gdt_base, imm32(index * 8)),
                           imm32(arch::kPhysMemSize - 1))),
            "target cs descriptor");
        ExprRef b0 = b_.load(E::add(desc_addr, imm32(0)), 1);
        ExprRef b1 = b_.load(E::add(desc_addr, imm32(1)), 1);
        ExprRef b2 = b_.load(E::add(desc_addr, imm32(2)), 1);
        ExprRef b3 = b_.load(E::add(desc_addr, imm32(3)), 1);
        ExprRef b4 = b_.load(E::add(desc_addr, imm32(4)), 1);
        ExprRef b5 = b_.load(E::add(desc_addr, imm32(5)), 1);
        ExprRef b6 = b_.load(E::add(desc_addr, imm32(6)), 1);
        ExprRef b7 = b_.load(E::add(desc_addr, imm32(7)), 1);

        const ExprRef is_s = bit_of(b5, 4);
        const ExprRef is_code = bit_of(b5, 3);
        fault_if(E::lor(E::lnot(is_s), E::lnot(is_code)),
                 arch::kExcGp, imm32(sel & 0xfffc), true);
        // Privilege (CPL is 0 in the subset): nonconforming code
        // requires RPL <= CPL and DPL == CPL; conforming requires
        // DPL <= CPL. With CPL == 0 both reduce to DPL == 0, plus
        // RPL == 0 for the nonconforming case.
        const ExprRef conforming = bit_of(b5, 2);
        const ExprRef dpl = E::extract(b5, 5, 2);
        ExprRef bad_priv = E::ne(dpl, E::constant(2, 0));
        if ((sel & 3) != 0) {
            bad_priv = E::lor(bad_priv, E::lnot(conforming));
        }
        fault_if(bad_priv, arch::kExcGp, imm32(sel & 0xfffc), true);
        fault_if(E::lnot(bit_of(b5, 7)), arch::kExcNp,
                 imm32(sel & 0xfffc), true);

        ExprRef limit_raw = E::bor(
            E::zext(E::concat(b1, b0), 32),
            E::shl(E::zext(E::band(b6, E::constant(8, 0x0f)), 32),
                   imm32(16)));
        ExprRef limit = b_.assign(
            E::ite(bit_of(b6, 7),
                   E::bor(E::shl(limit_raw, imm32(12)), imm32(0xfff)),
                   limit_raw),
            "target limit");
        // The target offset must be within the new code segment.
        fault_if(E::ult(limit, imm32(insn_.imm)), arch::kExcGp,
                 imm32(0), true);

        if (is_call) {
            // Push old CS (zero-extended) then the return EIP.
            push32(E::zext(seg_sel(arch::kCs), 32));
            ExprRef eip = ld32(layout::kEipAddr);
            push32(E::add(eip, imm32(insn_.length)));
        }

        ExprRef base = E::bor(
            E::zext(b2, 32),
            E::bor(E::shl(E::zext(b3, 32), imm32(8)),
                   E::bor(E::shl(E::zext(b4, 32), imm32(16)),
                          E::shl(E::zext(b7, 32), imm32(24)))));
        st16(layout::seg_addr(arch::kCs, layout::kSegSelector),
             E::constant(16, sel & 0xfffc)); // RPL := CPL (0).
        st32(layout::seg_addr(arch::kCs, layout::kSegBase), base);
        st32(layout::seg_addr(arch::kCs, layout::kSegLimit), limit);
        st8(layout::seg_addr(arch::kCs, layout::kSegAccess),
            E::bor(b5, E::constant(8, arch::kDescAccessed)));
        st8(layout::seg_addr(arch::kCs, layout::kSegDb),
            E::zext(bit_of(b6, 6), 8));
        b_.store(E::add(desc_addr, imm32(5)), 1,
                 E::bor(b5, E::constant(8, arch::kDescAccessed)));
        set_eip(imm32(insn_.imm));
        b_.halt(kHaltOk);
        return;
      }
      case Op::Iret: {
        // Same-privilege iret: pop EIP, CS, EFLAGS. The Hi-Fi
        // emulator reads the three stack slots innermost-first, which
        // matches hardware; the Lo-Fi emulator's iret_pop_order bug
        // reads them in the opposite order (paper §6.2).
        ExprRef esp = b_.assign(gpr(arch::kEsp), "esp");
        ExprRef new_eip = b_.assign(mem_read(arch::kSs, esp, 4),
                                    "new eip");
        ExprRef cs_word = b_.assign(
            mem_read(arch::kSs, E::add(esp, imm32(4)), 4), "cs slot");
        ExprRef new_fl = b_.assign(
            mem_read(arch::kSs, E::add(esp, imm32(8)), 4),
            "new eflags");
        ExprRef sel = b_.assign(E::extract(cs_word, 0, 16),
                                "new cs selector");
        ExprRef sel32 = E::zext(sel, 32);

        // CS selector checks (same-level return only; returning to a
        // different privilege level is outside the subset).
        fault_if(E::eq(E::band(sel, E::constant(16, 0xfffc)),
                       E::constant(16, 0)),
                 arch::kExcGp, imm32(0), true);
        fault_if(E::eq(bit_of(sel, 2), E::bool_const(true)),
                 arch::kExcGp, E::band(sel32, imm32(0xfffc)), true);
        fault_if(E::ne(E::band(sel32, imm32(3)), imm32(0)),
                 arch::kExcGp, E::band(sel32, imm32(0xfffc)), true);
        ExprRef gdt_limit = E::zext(ld16(layout::kGdtrLimitAddr), 32);
        ExprRef index = E::lshr(sel32, imm32(3));
        fault_if(E::ult(gdt_limit,
                        E::add(E::shl(index, imm32(3)), imm32(7))),
                 arch::kExcGp, E::band(sel32, imm32(0xfffc)), true);

        ExprRef gdt_base = ld32(layout::kGdtrBaseAddr);
        ExprRef desc_addr = b_.assign(
            E::add(imm32(layout::kGuestPhysBase),
                   E::band(E::add(gdt_base, E::shl(index, imm32(3))),
                           imm32(arch::kPhysMemSize - 1))),
            "cs descriptor address");
        ExprRef b0 = b_.load(E::add(desc_addr, imm32(0)), 1);
        ExprRef b1 = b_.load(E::add(desc_addr, imm32(1)), 1);
        ExprRef b2 = b_.load(E::add(desc_addr, imm32(2)), 1);
        ExprRef b3 = b_.load(E::add(desc_addr, imm32(3)), 1);
        ExprRef b4 = b_.load(E::add(desc_addr, imm32(4)), 1);
        ExprRef b5 = b_.load(E::add(desc_addr, imm32(5)), 1);
        ExprRef b6 = b_.load(E::add(desc_addr, imm32(6)), 1);
        ExprRef b7 = b_.load(E::add(desc_addr, imm32(7)), 1);

        const ExprRef is_s = bit_of(b5, 4);
        const ExprRef is_code = bit_of(b5, 3);
        const ExprRef present = bit_of(b5, 7);
        fault_if(E::lor(E::lnot(is_s), E::lnot(is_code)), arch::kExcGp,
                 E::band(sel32, imm32(0xfffc)), true);
        fault_if(E::lnot(present), arch::kExcNp,
                 E::band(sel32, imm32(0xfffc)), true);

        ExprRef limit_raw = E::bor(
            E::zext(E::concat(b1, b0), 32),
            E::shl(E::zext(E::band(b6, E::constant(8, 0x0f)), 32),
                   imm32(16)));
        ExprRef limit = E::ite(
            bit_of(b6, 7),
            E::bor(E::shl(limit_raw, imm32(12)), imm32(0xfff)),
            limit_raw);
        ExprRef base = E::bor(
            E::zext(b2, 32),
            E::bor(E::shl(E::zext(b3, 32), imm32(8)),
                   E::bor(E::shl(E::zext(b4, 32), imm32(16)),
                          E::shl(E::zext(b7, 32), imm32(24)))));

        // Commit: CS cache, EFLAGS (CPL0 mask), EIP, ESP.
        st16(layout::seg_addr(arch::kCs, layout::kSegSelector), sel);
        st32(layout::seg_addr(arch::kCs, layout::kSegBase), base);
        st32(layout::seg_addr(arch::kCs, layout::kSegLimit), limit);
        st8(layout::seg_addr(arch::kCs, layout::kSegAccess),
            E::bor(b5, E::constant(8, arch::kDescAccessed)));
        st8(layout::seg_addr(arch::kCs, layout::kSegDb),
            E::zext(bit_of(b6, 6), 8));
        b_.store(E::add(desc_addr, imm32(5)), 1,
                 E::bor(b5, E::constant(8, arch::kDescAccessed)));

        const u64 mask = 0x47fd5; // Same CPL0 mask as popfd.
        ExprRef fl = eflags();
        set_eflags(E::bor(E::band(fl, imm32(~mask)),
                          E::band(new_fl, imm32(mask))));
        set_eip(new_eip);
        set_gpr(arch::kEsp, E::add(esp, imm32(12)));
        b_.halt(kHaltOk);
        return;
      }
      default:
        panic("bad control op");
    }
}

// ---------------------------------------------------------------------
// Far pointer loads.
// ---------------------------------------------------------------------

void
Ctx::gen_far_load()
{
    unsigned target;
    switch (insn_.desc->op) {
      case Op::Les: target = arch::kEs; break;
      case Op::Lds: target = arch::kDs; break;
      case Op::Lss: target = arch::kSs; break;
      case Op::Lfs: target = arch::kFs; break;
      case Op::Lgs: target = arch::kGs; break;
      default: panic("bad far load");
    }
    ExprRef ea = effective_address();
    const unsigned seg = effective_segment();

    // The fetch order of the two operands is the Bochs/QEMU behaviour
    // difference from the paper (§6.2, lfs): when the two reads land
    // on pages with different permissions, the order determines which
    // fault is reported first.
    ExprRef offset, sel;
    if (opt_.hifi_far_fetch_order) {
        sel = b_.assign(mem_read(seg, E::add(ea, imm32(4)), 2),
                        "selector");
        offset = b_.assign(mem_read(seg, ea, 4), "offset");
    } else {
        offset = b_.assign(mem_read(seg, ea, 4), "offset");
        sel = b_.assign(mem_read(seg, E::add(ea, imm32(4)), 2),
                        "selector");
    }
    load_segment(target, sel);
    set_gpr(insn_.reg, offset);
    done();
}

// ---------------------------------------------------------------------
// Flag ops / hlt.
// ---------------------------------------------------------------------

void
Ctx::gen_flagops()
{
    switch (insn_.desc->op) {
      case Op::Hlt:
        st8(layout::kHaltedAddr, E::constant(8, 1));
        commit_eip_advance();
        b_.halt(kHaltStop);
        return;
      case Op::Clc: {
        FlagSet f;
        f.cf = E::bool_const(false);
        write_flags(f);
        done();
        return;
      }
      case Op::Stc: {
        FlagSet f;
        f.cf = E::bool_const(true);
        write_flags(f);
        done();
        return;
      }
      case Op::Cmc: {
        FlagSet f;
        f.cf = E::lnot(flag(0));
        write_flags(f);
        done();
        return;
      }
      case Op::Cld:
        set_eflags(E::band(eflags(), imm32(~u64{arch::kFlagDf})));
        done();
        return;
      case Op::Std:
        set_eflags(E::bor(eflags(), imm32(arch::kFlagDf)));
        done();
        return;
      case Op::Cli:
        // CPL0 <= IOPL always holds in the subset's baseline.
        set_eflags(E::band(eflags(), imm32(~u64{arch::kFlagIf})));
        done();
        return;
      case Op::Sti:
        set_eflags(E::bor(eflags(), imm32(arch::kFlagIf)));
        done();
        return;
      default:
        panic("bad flag op");
    }
}

// ---------------------------------------------------------------------
// Group 3: test/not/neg/mul/imul/div/idiv.
// ---------------------------------------------------------------------

void
Ctx::gen_grp3()
{
    const Op op = insn_.desc->op;
    switch (op) {
      case Op::Grp3TestRm8Imm8:
      case Op::Grp3TestRm32Imm32: {
        const unsigned w = op == Op::Grp3TestRm8Imm8 ? 8 : 32;
        ExprRef a = read_rm(w);
        write_flags(flags_logic(b_.assign(
            E::band(a, imm_v(w)), "test")));
        done();
        return;
      }
      case Op::Grp3NotRm8:
      case Op::Grp3NotRm32: {
        const unsigned w = op == Op::Grp3NotRm8 ? 8 : 32;
        std::optional<PreparedWrite> pw;
        ExprRef a = read_rm_for_write(w, pw);
        write_rm_commit(pw, w, E::bnot(a));
        done();
        return;
      }
      case Op::Grp3NegRm8:
      case Op::Grp3NegRm32: {
        const unsigned w = op == Op::Grp3NegRm8 ? 8 : 32;
        std::optional<PreparedWrite> pw;
        ExprRef a = b_.assign(read_rm_for_write(w, pw), "value");
        FlagSet f = flags_sub(E::constant(w, 0), a,
                              E::bool_const(false));
        write_rm_commit(pw, w, E::neg(a));
        write_flags(f);
        done();
        return;
      }
      case Op::Grp3MulRm8: {
        ExprRef src = b_.assign(read_rm(8), "src");
        ExprRef wide = b_.assign(
            E::mul(E::zext(gpr8(0), 16), E::zext(src, 16)), "product");
        set_gpr16(arch::kEax, wide);
        ExprRef high = E::extract(wide, 8, 8);
        ExprRef overflow = E::ne(high, E::constant(8, 0));
        FlagSet f;
        f.cf = overflow;
        f.of = overflow;
        // SF/ZF/PF/AF are documented-undefined after mul; the
        // hardware model derives them from the low half.
        ExprRef low = E::extract(wide, 0, 8);
        f.sf = bit_of(low, 7);
        f.zf = E::eq(low, E::constant(8, 0));
        f.pf = parity(low);
        f.af = E::bool_const(false);
        write_flags(f);
        done();
        return;
      }
      case Op::Grp3MulRm32: {
        ExprRef src = b_.assign(read_rm(32), "src");
        ExprRef wide = b_.assign(
            E::mul(E::zext(gpr(arch::kEax), 64), E::zext(src, 64)),
            "product");
        ExprRef low = b_.assign(E::extract(wide, 0, 32), "low");
        ExprRef high = b_.assign(E::extract(wide, 32, 32), "high");
        set_gpr(arch::kEax, low);
        set_gpr(arch::kEdx, high);
        ExprRef overflow = E::ne(high, imm32(0));
        FlagSet f;
        f.cf = overflow;
        f.of = overflow;
        f.sf = bit_of(low, 31);
        f.zf = E::eq(low, imm32(0));
        f.pf = parity(low);
        f.af = E::bool_const(false);
        write_flags(f);
        done();
        return;
      }
      case Op::Grp3ImulRm8: {
        ExprRef src = b_.assign(read_rm(8), "src");
        ExprRef wide = b_.assign(
            E::mul(E::sext(gpr8(0), 16), E::sext(src, 16)), "product");
        set_gpr16(arch::kEax, wide);
        ExprRef low = E::extract(wide, 0, 8);
        ExprRef overflow = E::ne(wide, E::sext(low, 16));
        FlagSet f;
        f.cf = overflow;
        f.of = overflow;
        f.sf = bit_of(low, 7);
        f.zf = E::eq(low, E::constant(8, 0));
        f.pf = parity(low);
        f.af = E::bool_const(false);
        write_flags(f);
        done();
        return;
      }
      case Op::Grp3ImulRm32: {
        ExprRef src = b_.assign(read_rm(32), "src");
        ExprRef wide = b_.assign(
            E::mul(E::sext(gpr(arch::kEax), 64), E::sext(src, 64)),
            "product");
        ExprRef low = b_.assign(E::extract(wide, 0, 32), "low");
        set_gpr(arch::kEax, low);
        set_gpr(arch::kEdx, E::extract(wide, 32, 32));
        ExprRef overflow = E::ne(wide, E::sext(low, 64));
        FlagSet f;
        f.cf = overflow;
        f.of = overflow;
        f.sf = bit_of(low, 31);
        f.zf = E::eq(low, imm32(0));
        f.pf = parity(low);
        f.af = E::bool_const(false);
        write_flags(f);
        done();
        return;
      }
      case Op::Grp3DivRm8: {
        ExprRef src = b_.assign(read_rm(8), "divisor");
        fault_if(E::eq(src, E::constant(8, 0)), arch::kExcDe,
                 imm32(0), false);
        ExprRef num = b_.assign(gpr16(arch::kEax), "ax");
        ExprRef q = b_.assign(
            E::binop(ir::BinOpKind::UDiv, num, E::zext(src, 16)),
            "quotient");
        ExprRef r = E::binop(ir::BinOpKind::URem, num,
                             E::zext(src, 16));
        fault_if(E::ult(E::constant(16, 0xff), q), arch::kExcDe,
                 imm32(0), false);
        set_gpr8(0, E::extract(q, 0, 8));  // AL.
        set_gpr8(4, E::extract(r, 0, 8));  // AH.
        done();
        return;
      }
      case Op::Grp3DivRm32: {
        ExprRef src = b_.assign(read_rm(32), "divisor");
        fault_if(E::eq(src, imm32(0)), arch::kExcDe, imm32(0), false);
        ExprRef num = b_.assign(
            E::concat(gpr(arch::kEdx), gpr(arch::kEax)), "edx:eax");
        ExprRef q = b_.assign(
            E::binop(ir::BinOpKind::UDiv, num, E::zext(src, 64)),
            "quotient");
        ExprRef r = E::binop(ir::BinOpKind::URem, num,
                             E::zext(src, 64));
        fault_if(E::ult(E::constant(64, 0xffffffff), q), arch::kExcDe,
                 imm32(0), false);
        set_gpr(arch::kEax, E::extract(q, 0, 32));
        set_gpr(arch::kEdx, E::extract(r, 0, 32));
        done();
        return;
      }
      case Op::Grp3IdivRm8: {
        ExprRef src = b_.assign(read_rm(8), "divisor");
        fault_if(E::eq(src, E::constant(8, 0)), arch::kExcDe,
                 imm32(0), false);
        ExprRef num = b_.assign(gpr16(arch::kEax), "ax");
        ExprRef q = b_.assign(
            E::binop(ir::BinOpKind::SDiv, num, E::sext(src, 16)),
            "quotient");
        ExprRef r = E::binop(ir::BinOpKind::SRem, num,
                             E::sext(src, 16));
        // Quotient must fit in 8 signed bits.
        fault_if(E::ne(q, E::sext(E::extract(q, 0, 8), 16)),
                 arch::kExcDe, imm32(0), false);
        set_gpr8(0, E::extract(q, 0, 8));
        set_gpr8(4, E::extract(r, 0, 8));
        done();
        return;
      }
      case Op::Grp3IdivRm32: {
        ExprRef src = b_.assign(read_rm(32), "divisor");
        fault_if(E::eq(src, imm32(0)), arch::kExcDe, imm32(0), false);
        ExprRef num = b_.assign(
            E::concat(gpr(arch::kEdx), gpr(arch::kEax)), "edx:eax");
        ExprRef q = b_.assign(
            E::binop(ir::BinOpKind::SDiv, num, E::sext(src, 64)),
            "quotient");
        ExprRef r = E::binop(ir::BinOpKind::SRem, num,
                             E::sext(src, 64));
        fault_if(E::ne(q, E::sext(E::extract(q, 0, 32), 64)),
                 arch::kExcDe, imm32(0), false);
        set_gpr(arch::kEax, E::extract(q, 0, 32));
        set_gpr(arch::kEdx, E::extract(r, 0, 32));
        done();
        return;
      }
      default:
        panic("bad grp3 op");
    }
}

// ---------------------------------------------------------------------
// System instructions.
// ---------------------------------------------------------------------

void
Ctx::gen_system()
{
    switch (insn_.desc->op) {
      case Op::Sgdt:
      case Op::Sidt: {
        const bool gdt = insn_.desc->op == Op::Sgdt;
        ExprRef ea = effective_address();
        const unsigned seg = effective_segment();
        ExprRef limit = ld16(gdt ? layout::kGdtrLimitAddr
                                 : layout::kIdtrLimitAddr);
        ExprRef base = ld32(gdt ? layout::kGdtrBaseAddr
                                : layout::kIdtrBaseAddr);
        mem_write(seg, ea, 2, limit);
        mem_write(seg, E::add(ea, imm32(2)), 4, base);
        done();
        return;
      }
      case Op::Lgdt:
      case Op::Lidt: {
        const bool gdt = insn_.desc->op == Op::Lgdt;
        ExprRef ea = effective_address();
        const unsigned seg = effective_segment();
        ExprRef limit = b_.assign(mem_read(seg, ea, 2), "limit");
        ExprRef base = b_.assign(
            mem_read(seg, E::add(ea, imm32(2)), 4), "base");
        st16(gdt ? layout::kGdtrLimitAddr : layout::kIdtrLimitAddr,
             limit);
        st32(gdt ? layout::kGdtrBaseAddr : layout::kIdtrBaseAddr,
             base);
        done();
        return;
      }
      case Op::Invlpg:
        // No TLB in the model: the EA is computed (and the encoding
        // validated) but nothing else happens.
        effective_address();
        done();
        return;
      case Op::Clts:
        st32(layout::kCr0Addr,
             E::band(ld32(layout::kCr0Addr),
                     imm32(~u64{arch::kCr0Ts})));
        done();
        return;
      case Op::MovR32Cr: {
        const unsigned crn = insn_.reg;
        u32 addr;
        switch (crn) {
          case 0: addr = layout::kCr0Addr; break;
          case 2: addr = layout::kCr2Addr; break;
          case 3: addr = layout::kCr3Addr; break;
          case 4: addr = layout::kCr4Addr; break;
          default:
            fault_now(arch::kExcUd, imm32(0), false);
            return;
        }
        set_gpr(insn_.rm, ld32(addr));
        done();
        return;
      }
      case Op::MovCrR32: {
        const unsigned crn = insn_.reg;
        ExprRef val = b_.assign(gpr(insn_.rm), "new cr");
        switch (crn) {
          case 0:
            // PG requires PE.
            fault_if(E::land(bit_of(val, 31),
                             E::lnot(bit_of(val, 0))),
                     arch::kExcGp, imm32(0), true);
            st32(layout::kCr0Addr, val);
            break;
          case 2:
            st32(layout::kCr2Addr, val);
            break;
          case 3:
            st32(layout::kCr3Addr, val);
            break;
          case 4:
            st32(layout::kCr4Addr, val);
            break;
          default:
            fault_now(arch::kExcUd, imm32(0), false);
            return;
        }
        done();
        return;
      }
      case Op::Rdmsr: {
        ExprRef ecx = b_.assign(gpr(arch::kEcx), "msr index");
        // Valid MSRs of the subset: sysenter cs/esp/eip.
        fault_if(E::land(E::ne(ecx, imm32(0x174)),
                         E::land(E::ne(ecx, imm32(0x175)),
                                 E::ne(ecx, imm32(0x176)))),
                 arch::kExcGp, imm32(0), true);
        ExprRef v = E::ite(
            E::eq(ecx, imm32(0x174)), ld32(layout::kOffMsrSysenterCs +
                                           layout::kCpuBase),
            E::ite(E::eq(ecx, imm32(0x175)),
                   ld32(layout::kOffMsrSysenterEsp + layout::kCpuBase),
                   ld32(layout::kOffMsrSysenterEip +
                        layout::kCpuBase)));
        set_gpr(arch::kEax, v);
        set_gpr(arch::kEdx, imm32(0));
        done();
        return;
      }
      case Op::Wrmsr: {
        ExprRef ecx = b_.assign(gpr(arch::kEcx), "msr index");
        fault_if(E::land(E::ne(ecx, imm32(0x174)),
                         E::land(E::ne(ecx, imm32(0x175)),
                                 E::ne(ecx, imm32(0x176)))),
                 arch::kExcGp, imm32(0), true);
        ExprRef eax = gpr(arch::kEax);
        // Branch on which MSR (three-way, explored symbolically when
        // ECX is symbolic).
        Label m174 = b_.label(), m175 = b_.label(), m176 = b_.label(),
              end = b_.label();
        b_.cjmp(E::eq(ecx, imm32(0x174)), m174, m175, "msr 174?");
        b_.bind(m174);
        st32(layout::kOffMsrSysenterCs + layout::kCpuBase, eax);
        b_.jmp(end);
        b_.bind(m175);
        Label m175b = b_.label();
        b_.cjmp(E::eq(ecx, imm32(0x175)), m175b, m176, "msr 175?");
        b_.bind(m175b);
        st32(layout::kOffMsrSysenterEsp + layout::kCpuBase, eax);
        b_.jmp(end);
        b_.bind(m176);
        st32(layout::kOffMsrSysenterEip + layout::kCpuBase, eax);
        b_.jmp(end);
        b_.bind(end);
        done();
        return;
      }
      case Op::Rdtsc:
        // The TSC is virtualized to zero on every backend so that
        // cross-validation does not see spurious timing differences.
        set_gpr(arch::kEax, imm32(0));
        set_gpr(arch::kEdx, imm32(0));
        done();
        return;
      case Op::Cpuid: {
        ExprRef leaf = b_.assign(gpr(arch::kEax), "leaf");
        ExprRef is0 = E::eq(leaf, imm32(0));
        ExprRef is1 = E::eq(leaf, imm32(1));
        set_gpr(arch::kEax,
                E::ite(is0, imm32(1),
                       E::ite(is1, imm32(0x600), imm32(0))));
        set_gpr(arch::kEbx, E::ite(is0, imm32(0x656b6f50), imm32(0)));
        set_gpr(arch::kEdx, E::ite(is0, imm32(0x76554d45), imm32(0)));
        set_gpr(arch::kEcx, E::ite(is0, imm32(0x36387856), imm32(0)));
        done();
        return;
      }
      default:
        panic("bad system op");
    }
}

// ---------------------------------------------------------------------
// Bit operations.
// ---------------------------------------------------------------------

void
Ctx::gen_bitops()
{
    const Op op = insn_.desc->op;
    switch (op) {
      case Op::BtRm32R32: case Op::BtsRm32R32: case Op::BtrRm32R32:
      case Op::BtcRm32R32: case Op::Grp8BtImm8: case Op::Grp8BtsImm8:
      case Op::Grp8BtrImm8: case Op::Grp8BtcImm8: {
        const bool from_reg =
            op == Op::BtRm32R32 || op == Op::BtsRm32R32 ||
            op == Op::BtrRm32R32 || op == Op::BtcRm32R32;
        enum class Mode { Test, Set, Reset, Complement } mode;
        switch (op) {
          case Op::BtRm32R32: case Op::Grp8BtImm8:
            mode = Mode::Test; break;
          case Op::BtsRm32R32: case Op::Grp8BtsImm8:
            mode = Mode::Set; break;
          case Op::BtrRm32R32: case Op::Grp8BtrImm8:
            mode = Mode::Reset; break;
          default:
            mode = Mode::Complement; break;
        }

        ExprRef bitoff = from_reg ? gpr(insn_.reg)
                                  : imm_low8_32_v();
        bitoff = b_.assign(bitoff, "bit offset");
        ExprRef idx = b_.assign(E::band(bitoff, imm32(31)),
                                "bit index");
        ExprRef mask = b_.assign(E::shl(imm32(1), idx), "bit mask");

        ExprRef val;
        std::optional<PreparedWrite> pw;
        if (insn_.mod == 3) {
            val = gpr(insn_.rm);
            if (mode != Mode::Test) {
                // Register destination, plain read-modify-write.
            }
        } else {
            // Memory bit strings: the register form addresses beyond
            // the dword via the signed bit offset (imm form does not).
            ExprRef ea = effective_address();
            if (from_reg) {
                ExprRef adj = E::shl(
                    E::ashr(bitoff, imm32(5)), imm32(2));
                ea = b_.assign(E::add(ea, adj), "adjusted ea");
            }
            const unsigned seg = effective_segment();
            if (mode == Mode::Test) {
                val = mem_read(seg, ea, 4);
            } else {
                pw = prepare_write(seg, ea, 4);
                val = b_.load(pw->host_addr, 4);
            }
        }
        val = b_.assign(val, "dword");
        ExprRef cf = E::ne(E::band(val, mask), imm32(0));
        if (mode != Mode::Test) {
            ExprRef out;
            switch (mode) {
              case Mode::Set: out = E::bor(val, mask); break;
              case Mode::Reset:
                out = E::band(val, E::bnot(mask));
                break;
              default: out = E::bxor(val, mask); break;
            }
            if (insn_.mod == 3)
                set_gpr(insn_.rm, out);
            else
                commit_write(*pw, out);
        }
        FlagSet f;
        f.cf = cf;
        write_flags(f);
        done();
        return;
      }
      case Op::ShldImm8: case Op::ShldCl:
      case Op::ShrdImm8: case Op::ShrdCl: {
        const bool left = op == Op::ShldImm8 || op == Op::ShldCl;
        ExprRef count =
            (op == Op::ShldImm8 || op == Op::ShrdImm8)
                ? shift_count_v()
                : E::band(gpr8(1), E::constant(8, 0x1f));
        count = b_.assign(count, "count");
        ExprRef is_zero = E::eq(count, E::constant(8, 0));
        ExprRef cnt64 = E::zext(count, 64);

        std::optional<PreparedWrite> pw;
        ExprRef dst = b_.assign(read_rm_for_write(32, pw), "dst");
        ExprRef src = b_.assign(gpr(insn_.reg), "src");

        ExprRef res, cf;
        if (left) {
            // res = high 32 of (dst:src << count).
            ExprRef wide = E::concat(dst, src);
            ExprRef shifted = E::shl(wide, cnt64);
            res = E::extract(shifted, 32, 32);
            cf = E::extract(
                E::lshr(E::zext(dst, 64),
                        E::sub(E::constant(64, 32), cnt64)),
                0, 1);
        } else {
            // res = low 32 of (src:dst >> count).
            ExprRef wide = E::concat(src, dst);
            ExprRef shifted = E::lshr(wide, cnt64);
            res = E::extract(shifted, 0, 32);
            cf = E::extract(
                E::lshr(E::zext(dst, 64),
                        E::sub(cnt64, E::constant(64, 1))),
                0, 1);
        }
        res = b_.assign(res, "result");
        write_rm_commit(pw, 32, E::ite(is_zero, dst, res));
        FlagSet f;
        f.cf = E::ite(is_zero, flag(0), cf);
        f.of = E::ite(is_zero, flag(11),
                      E::bxor(bit_of(dst, 31), bit_of(res, 31)));
        f.sf = E::ite(is_zero, flag(7), bit_of(res, 31));
        f.zf = E::ite(is_zero, flag(6), E::eq(res, imm32(0)));
        f.pf = E::ite(is_zero, flag(2), parity(res));
        f.af = E::ite(is_zero, flag(4), E::bool_const(false));
        write_flags(f);
        done();
        return;
      }
      case Op::Bsf:
      case Op::Bsr: {
        ExprRef src = b_.assign(read_rm(32), "src");
        ExprRef is_zero = b_.assign(E::eq(src, imm32(0)), "src zero");
        ExprRef idx = op == Op::Bsf ? expr_ctz32(src)
                                    : expr_bsr32(src);
        ExprRef dst = gpr(insn_.reg);
        // Source of zero: ZF set, destination unchanged (hardware-
        // model choice for the documented-undefined destination).
        set_gpr(insn_.reg, E::ite(is_zero, dst, idx));
        FlagSet f;
        f.zf = is_zero;
        write_flags(f);
        done();
        return;
      }
      case Op::BswapR32: {
        const unsigned r = insn_.desc->aux;
        ExprRef v = b_.assign(gpr(r), "value");
        ExprRef out = E::bor(
            E::bor(E::shl(E::band(v, imm32(0xff)), imm32(24)),
                   E::shl(E::band(v, imm32(0xff00)), imm32(8))),
            E::bor(E::band(E::lshr(v, imm32(8)), imm32(0xff00)),
                   E::band(E::lshr(v, imm32(24)), imm32(0xff))));
        set_gpr(r, out);
        done();
        return;
      }
      default:
        panic("bad bitop");
    }
}

// ---------------------------------------------------------------------
// imul (two/three operand).
// ---------------------------------------------------------------------

void
Ctx::gen_mul_imul()
{
    const Op op = insn_.desc->op;
    ExprRef a, b;
    if (op == Op::ImulR32Rm32) {
        a = b_.assign(gpr(insn_.reg), "dst");
        b = b_.assign(read_rm(32), "src");
    } else {
        a = b_.assign(read_rm(32), "src");
        b = op == Op::ImulR32Rm32Imm32
            ? imm_v(32)
            : imm_sext8_v(32);
    }
    ExprRef wide = b_.assign(E::mul(E::sext(a, 64), E::sext(b, 64)),
                             "product");
    ExprRef low = b_.assign(E::extract(wide, 0, 32), "low");
    set_gpr(insn_.reg, low);
    ExprRef overflow = E::ne(wide, E::sext(low, 64));
    FlagSet f;
    f.cf = overflow;
    f.of = overflow;
    f.sf = bit_of(low, 31);
    f.zf = E::eq(low, imm32(0));
    f.pf = parity(low);
    f.af = E::bool_const(false);
    write_flags(f);
    done();
}

// ---------------------------------------------------------------------
// cmpxchg / xadd.
// ---------------------------------------------------------------------

void
Ctx::gen_cmpxchg_xadd()
{
    const Op op = insn_.desc->op;
    const unsigned w =
        (op == Op::CmpxchgRm8R8 || op == Op::XaddRm8R8) ? 8 : 32;
    switch (op) {
      case Op::CmpxchgRm8R8:
      case Op::CmpxchgRm32R32: {
        // Atomic semantics: hardware always performs a write to the
        // destination (the old value when the compare fails), so the
        // write permission is checked up front. The Lo-Fi emulator's
        // cmpxchg_nonatomic bug skips that check on the not-equal
        // path and updates the accumulator anyway (paper §6.2).
        std::optional<PreparedWrite> pw;
        ExprRef dst = b_.assign(read_rm_for_write(w, pw), "dst");
        ExprRef acc = b_.assign(reg_operand(arch::kEax, w),
                                "accumulator");
        ExprRef src = b_.assign(reg_operand(insn_.reg, w), "src");
        ExprRef equal = b_.assign(E::eq(acc, dst), "equal");
        write_flags(flags_sub(acc, dst, E::bool_const(false)));
        write_rm_commit(pw, w, E::ite(equal, src, dst));
        set_reg_operand(arch::kEax, w, E::ite(equal, acc, dst));
        done();
        return;
      }
      case Op::XaddRm8R8:
      case Op::XaddRm32R32: {
        std::optional<PreparedWrite> pw;
        ExprRef dst = b_.assign(read_rm_for_write(w, pw), "dst");
        ExprRef src = b_.assign(reg_operand(insn_.reg, w), "src");
        FlagSet f = flags_add(dst, src, E::bool_const(false));
        write_rm_commit(pw, w, E::add(dst, src));
        set_reg_operand(insn_.reg, w, dst);
        write_flags(f);
        done();
        return;
      }
      default:
        panic("bad cmpxchg/xadd op");
    }
}

// ---------------------------------------------------------------------
// Movzx / movsx are simple enough to live here.
// ---------------------------------------------------------------------

void
Ctx::gen_movzx_movsx()
{
    const Op op = insn_.desc->op;
    const unsigned sw =
        (op == Op::MovzxR32Rm8 || op == Op::MovsxR32Rm8) ? 8 : 16;
    const bool sign = op == Op::MovsxR32Rm8 || op == Op::MovsxR32Rm16;
    ExprRef src = read_rm(sw);
    set_gpr(insn_.reg, sign ? E::sext(src, 32) : E::zext(src, 32));
    done();
}

// ---------------------------------------------------------------------
// Descriptor-load summary helper (paper §3.3.2).
// ---------------------------------------------------------------------

ir::Program
build_descriptor_load_helper()
{
    IrBuilder b("descriptor_load_helper");
    namespace dh = desc_helper;
    auto imm = [](u64 v) { return E::constant(32, v); };

    ExprRef bytes[8];
    for (unsigned i = 0; i < 8; ++i)
        bytes[i] = b.load(imm(dh::kInputBytes + i), 1);

    // This helper is deliberately written with *control flow* (like
    // the Bochs code it models) rather than branchless selects, so
    // exploring it inline would multiply paths — which is exactly what
    // the summary avoids.
    ExprRef access = bytes[5];
    Label not_system = b.label(), system = b.label();
    b.cjmp(E::extract(access, 4, 1), not_system, system, "S bit");

    b.bind(system);
    // The access byte is reported even on fault paths: the caller's
    // segment-kind-specific type rules need it.
    b.store(imm(dh::kOutAccess), 1, access);
    b.store(imm(dh::kOutFault), 1, E::constant(8, 1));
    b.halt(0);

    b.bind(not_system);
    Label present = b.label(), absent = b.label();
    b.cjmp(E::extract(access, 7, 1), present, absent, "P bit");

    b.bind(absent);
    b.store(imm(dh::kOutAccess), 1, access);
    b.store(imm(dh::kOutFault), 1, E::constant(8, 2));
    b.halt(0);

    b.bind(present);
    // Parse limit with granularity branch.
    ExprRef limit_raw = b.assign(E::bor(
        E::zext(E::concat(bytes[1], bytes[0]), 32),
        E::shl(E::zext(E::band(bytes[6], E::constant(8, 0x0f)), 32),
               imm(16))));
    Label coarse = b.label(), fine = b.label(), limit_done = b.label();
    b.cjmp(E::extract(bytes[6], 7, 1), coarse, fine, "G bit");
    b.bind(coarse);
    b.store(imm(dh::kOutLimit), 4,
            E::bor(E::shl(limit_raw, imm(12)), imm(0xfff)));
    b.jmp(limit_done);
    b.bind(fine);
    b.store(imm(dh::kOutLimit), 4, limit_raw);
    b.jmp(limit_done);
    b.bind(limit_done);

    ExprRef base = E::bor(
        E::zext(bytes[2], 32),
        E::bor(E::shl(E::zext(bytes[3], 32), imm(8)),
               E::bor(E::shl(E::zext(bytes[4], 32), imm(16)),
                      E::shl(E::zext(bytes[7], 32), imm(24)))));
    b.store(imm(dh::kOutBase), 4, base);
    b.store(imm(dh::kOutAccess), 1, access);
    b.store(imm(dh::kOutDb), 1,
            E::zext(E::extract(bytes[6], 6, 1), 8));
    b.store(imm(dh::kOutFault), 1, E::constant(8, 0));
    b.halt(0);
    return b.finish();
}

symexec::Summary
summarize_descriptor_load(symexec::VarPool &pool,
                          symexec::ExplorerConfig config)
{
    namespace dh = desc_helper;
    ir::Program helper = build_descriptor_load_helper();

    symexec::InitialByteFn initial =
        [&pool](u32 addr) -> ir::ExprRef {
        if (addr >= dh::kInputBytes && addr < dh::kInputBytes + 8) {
            return pool.get(
                "desc_byte_" + std::to_string(addr - dh::kInputBytes),
                8);
        }
        return E::constant(8, 0);
    };

    return summarize_program(helper, pool, initial,
                             {{dh::kOutBase, 4},
                              {dh::kOutLimit, 4},
                              {dh::kOutAccess, 1},
                              {dh::kOutDb, 1},
                              {dh::kOutFault, 1}},
                             config);
}

} // namespace pokeemu::hifi
