/**
 * @file
 * Internal semantics-builder context shared by the per-instruction
 * generators (semantics_core.cpp / semantics_ops.cpp). Not part of the
 * public API.
 */
#ifndef POKEEMU_HIFI_CTX_H
#define POKEEMU_HIFI_CTX_H

#include <optional>
#include <set>
#include <vector>

#include "hifi/semantics.h"
#include "ir/builder.h"

namespace pokeemu::hifi {

using arch::DecodedInsn;
using arch::Gpr;
using arch::Seg;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;
namespace layout = arch::layout;

/** A translated-and-checked pending store (commit-after-checks). */
struct PreparedWrite
{
    ExprRef host_addr; ///< Address in the IR address space.
    unsigned size = 0;
};

/**
 * Builder context: wraps an IrBuilder with machine-state accessors,
 * fault plumbing, segmentation/paging checks, flag helpers, and the
 * per-Op generators. One instance builds one instruction's program.
 */
class Ctx
{
  public:
    Ctx(const DecodedInsn &insn, const SemanticsOptions &options);

    /** Generate everything and return the finished program. */
    ir::Program build();

  private:
    /// @name Raw state-image access.
    /// @{
    ExprRef ld8(u32 addr);
    ExprRef ld16(u32 addr);
    ExprRef ld32(u32 addr);
    void st8(u32 addr, const ExprRef &v);
    void st16(u32 addr, const ExprRef &v);
    void st32(u32 addr, const ExprRef &v);
    /// @}

    /// @name Registers and flags.
    /// @{
    ExprRef gpr(unsigned r);
    void set_gpr(unsigned r, const ExprRef &v);
    ExprRef gpr16(unsigned r);
    void set_gpr16(unsigned r, const ExprRef &v);
    /** 8-bit register per x86 encoding (AL..BH). */
    ExprRef gpr8(unsigned r);
    void set_gpr8(unsigned r, const ExprRef &v);
    /** Register operand of the instruction's width. */
    ExprRef reg_operand(unsigned r, unsigned width);
    void set_reg_operand(unsigned r, unsigned width, const ExprRef &v);
    ExprRef eflags();
    void set_eflags(const ExprRef &v);
    ExprRef flag(unsigned pos); ///< 1-bit.
    /// @}

    /// @name Segment-register cache fields.
    /// @{
    ExprRef seg_sel(unsigned s);
    ExprRef seg_base(unsigned s);
    ExprRef seg_limit(unsigned s);
    ExprRef seg_access(unsigned s);
    ExprRef seg_db(unsigned s);
    /// @}

    /// @name Fault plumbing.
    /// @{
    /**
     * Emit a jump to a fault block when @p cond holds. Pass
     * @p expect_decided when the caller knows the check folds constant
     * or is implied by an earlier identical check for this encoding
     * (re-checked segments, constant offsets): the emitted statements
     * then carry `lint: allow-*` markers acknowledging the ir_lint
     * findings the degenerate check produces.
     */
    void fault_if(const ExprRef &cond, u8 vector,
                  const ExprRef &error_code, bool has_error,
                  const ExprRef &cr2 = nullptr,
                  bool expect_decided = false);
    /** Unconditional fault (terminates this generator's path). */
    void fault_now(u8 vector, const ExprRef &error_code, bool has_error,
                   const ExprRef &cr2 = nullptr);
    /// @}

    /// @name Memory through segmentation + paging.
    /// @{
    /**
     * Segment-level checks for an access; returns the linear address.
     * Faults use #SS when @p s is the stack segment, else #GP.
     */
    ExprRef seg_check(unsigned s, const ExprRef &offset, unsigned size,
                      bool write);
    /** Page walk; returns the IR-space host address of the data. */
    ExprRef translate(const ExprRef &linear, bool write);
    ExprRef mem_read(unsigned s, const ExprRef &offset, unsigned size);
    PreparedWrite prepare_write(unsigned s, const ExprRef &offset,
                                unsigned size);
    void commit_write(const PreparedWrite &w, const ExprRef &value);
    /** One-step write (checks immediately before the store). */
    void mem_write(unsigned s, const ExprRef &offset, unsigned size,
                   const ExprRef &value);
    /// @}

    /// @name Encoding-value operands (immediate / displacement).
    /// Specialized mode (the default) returns the decoded encoding's
    /// constants — byte-identical to the pre-parameterization
    /// programs. Generic mode (opt_.generic_params, used only by the
    /// compiled-handler generator) returns expressions over the
    /// param-block loads emitted at the top of build().
    /// @{
    bool generic() const { return opt_.generic_params; }
    /** The 32-bit value immediate (insn_.imm). */
    ExprRef imm_v(unsigned width);
    /** imm's low byte sign-extended to @p width. */
    ExprRef imm_sext8_v(unsigned width);
    /** imm's low byte masked to a 5-bit shift count (width 8). */
    ExprRef shift_count_v();
    /** imm's low byte zero-extended to 32 (bt-family bit offset). */
    ExprRef imm_low8_32_v();
    /** The 32-bit displacement (insn_.disp). */
    ExprRef disp_v();
    /// @}

    /// @name Operand helpers.
    /// @{
    /** Effective address of the ModRM memory operand. */
    ExprRef effective_address();
    /** Segment used by the ModRM memory operand (override applied). */
    unsigned effective_segment() const;
    /** Read the r/m operand (register or memory). */
    ExprRef read_rm(unsigned width);
    /**
     * Prepare the r/m operand as a destination: returns current value;
     * call write_rm_commit to store the new one. For memory operands
     * the translation/checks happen here (atomic commit order).
     */
    ExprRef read_rm_for_write(unsigned width,
                              std::optional<PreparedWrite> &pw);
    void write_rm_commit(const std::optional<PreparedWrite> &pw,
                         unsigned width, const ExprRef &v);
    /// @}

    /// @name Flag computation (branchless).
    /// @{
    ExprRef parity(const ExprRef &res); ///< PF of low byte, 1-bit.
    struct FlagSet
    {
        ExprRef cf, pf, af, zf, sf, of; ///< 1-bit each; null = keep.
    };
    void write_flags(const FlagSet &f);
    FlagSet flags_logic(const ExprRef &res);
    FlagSet flags_add(const ExprRef &a, const ExprRef &b,
                      const ExprRef &carry_in);
    FlagSet flags_sub(const ExprRef &a, const ExprRef &b,
                      const ExprRef &borrow_in);
    /** Condition-code predicate (x86 cc encoding), 1-bit. */
    ExprRef cond_cc(unsigned cc);
    /// @}

    /// @name Stack helpers.
    /// @{
    void push32(const ExprRef &value);
    /** Read the top of stack without adjusting ESP. */
    ExprRef stack_read(const ExprRef &esp_offset, unsigned size);
    /// @}

    /// @name Control flow / completion.
    /// @{
    void commit_eip_advance();
    void set_eip(const ExprRef &target);
    void done(); ///< commit EIP advance + halt OK.
    /// @}

    /// @name Segment loading (mov sreg / pop ss / far loads).
    /// @{
    /**
     * Load segment register @p s from @p selector with full descriptor
     * checks; uses the summary when available (paper §3.3.2).
     */
    void load_segment(unsigned s, const ExprRef &selector);
    /// @}

    /// @name Per-Op generators.
    /// @{
    void gen();
    void gen_alu();
    void gen_inc_dec_push_pop();
    void gen_mov();
    void gen_test_xchg();
    void gen_jcc_setcc_cmov();
    void gen_stack_misc(); ///< pushfd/popfd/sahf/lahf/cwde/cdq.
    void gen_string();
    void gen_shift();
    void gen_control();    ///< ret/call/jmp/leave/iret/int.
    void gen_far_load();
    void gen_grp3();
    void gen_grp5();       ///< inc/dec/call/jmp/push r/m.
    void gen_flagops();    ///< clc/stc/cmc/cli/sti/cld/std/hlt.
    void gen_system();     ///< lgdt/lidt/sgdt/sidt/mov cr/msr/cpuid...
    void gen_bitops();     ///< bt/bts/btr/btc/shld/shrd/bsf/bsr.
    void gen_mul_imul();
    void gen_cmpxchg_xadd();
    void gen_movzx_movsx();
    /// @}

    IrBuilder b_;
    const DecodedInsn &insn_;
    const SemanticsOptions &opt_;

    /** Param-block loads (generic mode only; null otherwise). Loaded
     *  once in the entry block so every use is dominated; the
     *  optimizer's DCE drops whichever a program never reads. */
    ExprRef imm_param_;
    ExprRef disp_param_;

    struct PendingFault
    {
        Label label;
        u8 vector;
        ExprRef error_code;
        bool has_error;
        ExprRef cr2;
        /** Guarding check is statically decided for this encoding, so
         *  the dispatch block may be dataflow-unreachable. */
        bool statically_dead = false;
    };
    std::vector<PendingFault> pending_faults_;
    void flush_faults();
    /** Segments already seg_check'ed in this program: a later check of
     *  the same segment is decided by the dataflow facts on every path
     *  where the first one passed. */
    std::set<unsigned> seg_checked_;
};

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_CTX_H
