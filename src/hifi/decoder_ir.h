/**
 * @file
 * The Hi-Fi emulator's instruction decoder as an IR program.
 *
 * Instruction-set exploration (paper §3.2) symbolically executes the
 * emulator's decoder with the first bytes of the instruction buffer
 * marked symbolic; each path that reaches "per-instruction code"
 * yields a candidate byte sequence, and paths are grouped by the
 * handler they select. Here the decoder is generated from the same
 * instruction table as the C++ decoder (arch/decoder.h); the program
 * reads bytes at layout::kInsnBufBase and halts with:
 *   - the table index of the selected instruction, or
 *   - kDecodeInvalid (#UD) / kDecodeTooLong (#GP).
 *
 * The control-flow granularity mirrors an interpreter's: a per-value
 * dispatch on opcode bytes (each opcode is separate per-instruction
 * code) but field-level branches for ModRM/SIB forms, so the paths
 * partition the byte-sequence space the way the paper's Bochs
 * exploration does.
 */
#ifndef POKEEMU_HIFI_DECODER_IR_H
#define POKEEMU_HIFI_DECODER_IR_H

#include "arch/layout.h"
#include "ir/stmt.h"

namespace pokeemu::hifi {

/// @name Decoder halt codes (table indices are below 0x10000).
/// @{
constexpr u32 kDecodeInvalid = 0x10000; ///< #UD.
constexpr u32 kDecodeTooLong = 0x10001; ///< #GP (> 15 bytes).
/// @}

/** Build the decoder program (cached by callers as needed). */
ir::Program build_decoder_program();

/** Scratch area used by the decoder program (after the 16-byte buffer). */
namespace decoder_scratch {
constexpr u32 kPos = arch::layout::kInsnBufBase + 0x40;
constexpr u32 kNumPrefixes = arch::layout::kInsnBufBase + 0x44;
constexpr u32 kLock = arch::layout::kInsnBufBase + 0x48;
constexpr u32 kRep = arch::layout::kInsnBufBase + 0x49;
constexpr u32 kRepne = arch::layout::kInsnBufBase + 0x4a;
constexpr u32 kSegOverride = arch::layout::kInsnBufBase + 0x4b;
} // namespace decoder_scratch

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_DECODER_IR_H
