/**
 * @file
 * Multi-instruction-sequence semantics — the paper's §7 future work
 * ("Multiple-Instruction Sequences").
 *
 * The paper tests each instruction separately and notes that this is
 * sufficient *if* every machine state is initializable and instruction
 * executions are independent — but that emulators "may themselves
 * compose individual instructions incorrectly, especially ... dynamic
 * binary translation for multi-instruction sequences". This module
 * lifts exploration to straight-line sequences: the per-instruction
 * semantics programs are composed into one IR program, so symbolic
 * execution enumerates the *joint* path space (e.g. flag-producing
 * arithmetic followed by a conditional branch, or a segment load
 * followed by an access through it).
 *
 * Composition rules:
 *  - after each non-final instruction completes normally, the program
 *    checks that EIP advanced to the next instruction in the sequence;
 *    if the instruction branched away, the path halts with
 *    kHaltDiverged (still a valid, runnable test — the real backends
 *    follow the branch);
 *  - halt codes are tagged with the index of the instruction that
 *    produced them (bits 16+), so exploration results identify which
 *    element of the sequence faulted.
 */
#ifndef POKEEMU_HIFI_SEQUENCE_H
#define POKEEMU_HIFI_SEQUENCE_H

#include "hifi/semantics.h"

namespace pokeemu::hifi {

/** Sequence halt code: a non-final instruction branched away. */
constexpr u32 kHaltDiverged = 2;

/** Index of the instruction a sequence halt code came from. */
constexpr unsigned
halt_insn_index(u32 code)
{
    return code >> 16;
}

/** The per-instruction classification bits of a sequence halt code. */
constexpr u32
halt_base_code(u32 code)
{
    return code & 0xffff;
}

/**
 * Compose the semantics of @p insns (executed back to back at
 * consecutive addresses) into one explorable program.
 */
ir::Program
build_sequence_semantics(const std::vector<arch::DecodedInsn> &insns,
                         const SemanticsOptions &options = {});

} // namespace pokeemu::hifi

#endif // POKEEMU_HIFI_SEQUENCE_H
