#include "hifi/decoder_ir.h"

#include <map>

#include "arch/decoder.h"
#include "ir/builder.h"

namespace pokeemu::hifi {

using arch::ImmKind;
using arch::InsnDesc;
using arch::Op;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;
namespace layout = arch::layout;
namespace ds = decoder_scratch;

namespace {

ExprRef
imm32(u64 v)
{
    return E::constant(32, v);
}

/** Generator state threaded through the blocks. */
struct Gen
{
    IrBuilder b{"hifi_decoder"};
    Label invalid;
    Label too_long;

    /**
     * Fetch the next instruction byte: loads buf[POS], increments POS.
     * POS is always a concrete value along any one path, so the bound
     * check folds and adds no symbolic branches.
     */
    ExprRef
    fetch()
    {
        ExprRef pos = b.assign(b.load(imm32(ds::kPos), 4), "pos");
        b.if_goto(E::ule(imm32(arch::kMaxInsnLength), pos), too_long,
                  "fetch bound");
        ExprRef byte = b.load(
            E::add(imm32(layout::kInsnBufBase), pos), 1, // NOLINT
            ir::ConcretizePolicy::SingleRandom, "insn byte");
        b.store(imm32(ds::kPos), 4, E::add(pos, imm32(1)));
        return byte;
    }

    /** Skip @p n immediate/displacement bytes with bound checking. */
    void
    skip(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            fetch();
    }

    /**
     * Per-value dispatch on an 8-bit expression: balanced comparison
     * tree over the sorted case values; anything else goes to
     * @p fallback.
     */
    void
    dispatch(const ExprRef &byte, const std::map<u8, Label> &cases,
             Label fallback)
    {
        std::vector<std::pair<u8, Label>> sorted(cases.begin(),
                                                 cases.end());
        emit_dispatch(byte, sorted, 0, sorted.size(), fallback);
    }

    void
    emit_dispatch(const ExprRef &byte,
                  const std::vector<std::pair<u8, Label>> &cases,
                  std::size_t lo, std::size_t hi, Label fallback)
    {
        if (lo == hi) {
            b.jmp(fallback);
            return;
        }
        if (hi - lo == 1) {
            Label miss = b.label();
            b.cjmp(E::eq(byte, E::constant(8, cases[lo].first)),
                   cases[lo].second, miss, "dispatch leaf");
            b.bind(miss);
            b.jmp(fallback);
            return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        Label left = b.label(), right = b.label();
        b.cjmp(E::ult(byte, E::constant(8, cases[mid].first)), left,
               right, "dispatch split");
        b.bind(left);
        emit_dispatch(byte, cases, lo, mid, fallback);
        b.bind(right);
        emit_dispatch(byte, cases, mid, hi, fallback);
    }
};

unsigned
imm_size_of(ImmKind k)
{
    switch (k) {
      case ImmKind::None: return 0;
      case ImmKind::Imm8: case ImmKind::Rel8: return 1;
      case ImmKind::Imm16: return 2;
      case ImmKind::Imm32: case ImmKind::Rel32:
      case ImmKind::Moffs32: return 4;
      case ImmKind::FarPtr: return 6;
    }
    return 0;
}

/**
 * Emit the tail of one table row: structural legality checks shared
 * with arch/decoder.cpp, immediate consumption, and the final halt
 * with the row's table index. @p mod/@p reg are the ModRM fields
 * (null for rows without ModRM).
 */
void
emit_row_tail(Gen &g, int row_index, const ExprRef &mod,
              const ExprRef &reg)
{
    const InsnDesc &d = arch::insn_table()[row_index];
    IrBuilder &b = g.b;

    if (d.has_modrm) {
        assert(mod);
        if (arch::op_requires_memory(d.op)) {
            g.b.if_goto(E::eq(mod, E::constant(2, 3)), g.invalid,
                        "memory-only form");
        }
        // Segment-register moves: reg constraints.
        if (d.op == Op::MovRm16Sreg) {
            b.if_goto(E::ult(E::constant(3, 5), reg), g.invalid,
                      "no such sreg");
        }
        if (d.op == Op::MovSregRm16) {
            b.if_goto(E::lor(E::ult(E::constant(3, 5), reg),
                             E::eq(reg, E::constant(3, arch::kCs))),
                      g.invalid, "bad sreg destination");
        }
        if (d.op == Op::MovR32Cr || d.op == Op::MovCrR32) {
            b.if_goto(E::ne(mod, E::constant(2, 3)), g.invalid,
                      "cr move needs register form");
            b.if_goto(E::lor(E::eq(reg, E::constant(3, 1)),
                             E::ult(E::constant(3, 4), reg)),
                      g.invalid, "no such cr");
        }
    }

    // LOCK legality: lockable with a memory destination only.
    {
        ExprRef lock = b.load(imm32(ds::kLock), 1);
        ExprRef lock_set = E::ne(lock, E::constant(8, 0));
        if (!d.lockable || !d.has_modrm) {
            b.if_goto(lock_set, g.invalid, "lock illegal here");
        } else {
            b.if_goto(E::land(lock_set, E::eq(mod, E::constant(2, 3))),
                      g.invalid, "lock needs memory");
        }
    }

    // REP/REPNE legality.
    {
        ExprRef rep = b.load(imm32(ds::kRep), 1);
        ExprRef repne = b.load(imm32(ds::kRepne), 1);
        ExprRef any = E::lor(E::ne(rep, E::constant(8, 0)),
                             E::ne(repne, E::constant(8, 0)));
        if (!d.is_string) {
            b.if_goto(any, g.invalid, "rep illegal here");
        } else {
            const bool repne_ok =
                d.op == Op::Cmps8 || d.op == Op::Cmps32 ||
                d.op == Op::Scas8 || d.op == Op::Scas32;
            if (!repne_ok) {
                b.if_goto(E::ne(repne, E::constant(8, 0)), g.invalid,
                          "repne only on cmps/scas");
            }
        }
    }

    g.skip(imm_size_of(d.imm));
    b.halt(static_cast<u32>(row_index));
}

/** Emit the ModRM/SIB/displacement parse for one opcode's block. */
void
emit_opcode_block(Gen &g, u16 opcode, const std::vector<int> &rows)
{
    IrBuilder &b = g.b;
    ExprRef modrm = g.fetch();
    ExprRef mod = b.assign(E::extract(modrm, 6, 2), "mod");
    ExprRef reg = b.assign(E::extract(modrm, 3, 3), "reg");
    ExprRef rm = b.assign(E::extract(modrm, 0, 3), "rm");

    // Memory forms: SIB and displacement consumption. The branch
    // structure is field-level, mirroring interpreter decoders.
    Label reg_form = b.label(), after_ea = b.label();
    b.if_goto(E::eq(mod, E::constant(2, 3)), reg_form, "mod == 3");

    {
        Label no_sib = b.label(), disp_stage = b.label();
        Label sib_case = b.label();
        b.cjmp(E::eq(rm, E::constant(3, 4)), sib_case, no_sib,
               "rm == 4 (SIB)");
        b.bind(sib_case);
        {
            ExprRef sib = g.fetch();
            ExprRef base = E::extract(sib, 0, 3);
            // mod == 0 && base == 5: disp32 follows.
            Label d32 = b.label();
            b.if_goto(E::land(E::eq(mod, E::constant(2, 0)),
                              E::eq(base, E::constant(3, 5))),
                      d32, "sib base 5");
            b.jmp(disp_stage);
            b.bind(d32);
            g.skip(4);
            b.jmp(after_ea);
        }
        b.bind(no_sib);
        {
            Label d32 = b.label();
            b.if_goto(E::land(E::eq(mod, E::constant(2, 0)),
                              E::eq(rm, E::constant(3, 5))),
                      d32, "rm 5 disp32");
            b.jmp(disp_stage);
            b.bind(d32);
            g.skip(4);
            b.jmp(after_ea);
        }
        b.bind(disp_stage);
        {
            Label d8 = b.label(), d32 = b.label(), none = b.label();
            Label not1 = b.label();
            b.cjmp(E::eq(mod, E::constant(2, 1)), d8, not1, "disp8?");
            b.bind(not1);
            b.cjmp(E::eq(mod, E::constant(2, 2)), d32, none, "disp32?");
            b.bind(d8);
            g.skip(1);
            b.jmp(after_ea);
            b.bind(d32);
            g.skip(4);
            b.jmp(after_ea);
            b.bind(none);
            b.jmp(after_ea);
        }
    }
    b.bind(reg_form);
    b.jmp(after_ea);
    b.bind(after_ea);

    // Group resolution: rows keyed by required reg value; a single
    // row with group_reg < 0 matches any reg.
    if (rows.size() == 1 &&
        arch::insn_table()[rows[0]].group_reg < 0) {
        emit_row_tail(g, rows[0], mod, reg);
        return;
    }
    std::map<u8, Label> cases;
    std::map<u8, int> row_of;
    for (int row : rows) {
        const InsnDesc &d = arch::insn_table()[row];
        assert(d.group_reg >= 0 && "mixed grouping for opcode");
        cases[static_cast<u8>(d.group_reg)] = b.label();
        row_of[static_cast<u8>(d.group_reg)] = row;
    }
    g.dispatch(E::zext(reg, 8), cases, g.invalid);
    for (auto &[val, label] : cases) {
        b.bind(label);
        emit_row_tail(g, row_of[val], mod, reg);
    }
    (void)opcode;
}

} // namespace

ir::Program
build_decoder_program()
{
    Gen g;
    IrBuilder &b = g.b;
    g.invalid = b.label();
    g.too_long = b.label();

    // Initialize scratch state.
    b.store(imm32(ds::kPos), 4, imm32(0));
    b.store(imm32(ds::kNumPrefixes), 4, imm32(0));
    b.store(imm32(ds::kLock), 1, E::constant(8, 0));
    b.store(imm32(ds::kRep), 1, E::constant(8, 0));
    b.store(imm32(ds::kRepne), 1, E::constant(8, 0));
    b.store(imm32(ds::kSegOverride), 1, E::constant(8, 0xff));

    // Prefix loop.
    Label prefix_loop = b.here();
    ExprRef byte = g.fetch();

    struct PrefixCase
    {
        u8 value;
        u32 flag_addr; ///< 1-byte scratch slot to set, or 0.
        u8 flag_value;
    };
    const PrefixCase prefixes[] = {
        {0x26, ds::kSegOverride, arch::kEs},
        {0x2e, ds::kSegOverride, arch::kCs},
        {0x36, ds::kSegOverride, arch::kSs},
        {0x3e, ds::kSegOverride, arch::kDs},
        {0x64, ds::kSegOverride, arch::kFs},
        {0x65, ds::kSegOverride, arch::kGs},
        {0xf0, ds::kLock, 1},
        {0xf2, ds::kRepne, 1},
        {0xf3, ds::kRep, 1},
    };
    std::map<u8, Label> prefix_labels;
    for (const PrefixCase &p : prefixes)
        prefix_labels[p.value] = b.label();
    Label opcode_stage = b.label();
    g.dispatch(byte, prefix_labels, opcode_stage);
    for (const PrefixCase &p : prefixes) {
        b.bind(prefix_labels[p.value]);
        b.store(imm32(p.flag_addr), 1, E::constant(8, p.flag_value));
        ExprRef n = b.assign(
            E::add(b.load(imm32(ds::kNumPrefixes), 4), imm32(1)),
            "prefix count");
        b.store(imm32(ds::kNumPrefixes), 4, n);
        b.if_goto(E::ult(imm32(arch::kMaxPrefixes), n), g.invalid,
                  "too many prefixes");
        b.jmp(prefix_loop);
    }

    b.bind(opcode_stage);

    // Collect opcode -> rows from the table.
    std::map<u16, std::vector<int>> by_opcode;
    for (std::size_t i = 0; i < arch::insn_table().size(); ++i)
        by_opcode[arch::insn_table()[i].opcode].push_back(
            static_cast<int>(i));

    // One-byte opcode dispatch (0x0f handled as a special case).
    std::map<u8, Label> one_byte;
    for (const auto &[opcode, rows] : by_opcode) {
        if (opcode < 0x100)
            one_byte[static_cast<u8>(opcode)] = b.label();
    }
    Label two_byte_stage = b.label();
    one_byte[0x0f] = two_byte_stage;
    g.dispatch(byte, one_byte, g.invalid);

    for (const auto &[opcode, rows] : by_opcode) {
        if (opcode >= 0x100)
            continue;
        b.bind(one_byte.at(static_cast<u8>(opcode)));
        const InsnDesc &d0 = arch::insn_table()[rows[0]];
        if (d0.has_modrm) {
            emit_opcode_block(g, opcode, rows);
        } else {
            emit_row_tail(g, rows[0], nullptr, nullptr);
        }
    }

    // Two-byte opcodes.
    b.bind(two_byte_stage);
    ExprRef byte2 = g.fetch();
    std::map<u8, Label> second;
    for (const auto &[opcode, rows] : by_opcode) {
        if (opcode >= 0x100)
            second[static_cast<u8>(opcode & 0xff)] = b.label();
    }
    g.dispatch(byte2, second, g.invalid);
    for (const auto &[opcode, rows] : by_opcode) {
        if (opcode < 0x100)
            continue;
        b.bind(second.at(static_cast<u8>(opcode & 0xff)));
        const InsnDesc &d0 = arch::insn_table()[rows[0]];
        if (d0.has_modrm) {
            emit_opcode_block(g, opcode, rows);
        } else {
            emit_row_tail(g, rows[0], nullptr, nullptr);
        }
    }

    b.bind(g.invalid);
    b.halt(kDecodeInvalid);
    b.bind(g.too_long);
    b.halt(kDecodeTooLong);
    return b.finish();
}

} // namespace pokeemu::hifi
