#include "hifi/hifi_emulator.h"

#include <cstring>

#include "arch/paging.h"
#include "support/fault.h"

namespace pokeemu::hifi {

namespace layout = arch::layout;

HiFiEmulator::HiFiEmulator(SemanticsOptions options)
    : options_(options), ram_(arch::kPhysMemSize, 0),
      decoder_(build_decoder_program())
{
}

HiFiEmulator::~HiFiEmulator() = default;

void
HiFiEmulator::reset(const arch::CpuState &cpu, const std::vector<u8> &ram)
{
    arch::pack_cpu_state(cpu, state_.data());
    assert(ram.size() == arch::kPhysMemSize);
    ram_ = ram;
    insn_count_ = 0;
    cycles_ = 0;
}

void
HiFiEmulator::charge(const arch::DecodedInsn &insn, u32 halt_code)
{
    if (!options_.timing)
        return;
    cycles_ += timing::cost_model().cost_for(insn).charge(
        (halt_code & kHaltException) != 0);
}

void
HiFiEmulator::charge_fault_path()
{
    if (options_.timing)
        cycles_ += timing::kFaultPathCycles;
}

u8 *
HiFiEmulator::resolve(u32 addr)
{
    if (addr >= layout::kCpuBase &&
        addr < layout::kCpuBase + layout::kCpuStateSize) {
        return state_.data() + (addr - layout::kCpuBase);
    }
    if (addr >= layout::kInsnBufBase &&
        addr < layout::kInsnBufBase + scratch_.size()) {
        return scratch_.data() + (addr - layout::kInsnBufBase);
    }
    if (addr >= layout::kGuestPhysBase &&
        addr < layout::kGuestPhysBase + arch::kPhysMemSize) {
        return ram_.data() + (addr - layout::kGuestPhysBase);
    }
    panic("HiFiEmulator: IR access outside mapped regions");
}

u64
HiFiEmulator::load(u32 addr, unsigned size)
{
    // Guest physical accesses wrap modulo the memory size per byte
    // (all backends implement the same wrap rule).
    u64 v = 0;
    for (unsigned i = 0; i < size; ++i) {
        u32 a = addr + i;
        if (addr >= layout::kGuestPhysBase) {
            a = layout::kGuestPhysBase +
                ((addr - layout::kGuestPhysBase + i) &
                 (arch::kPhysMemSize - 1));
        }
        v |= static_cast<u64>(*resolve(a)) << (8 * i);
    }
    return v;
}

void
HiFiEmulator::store(u32 addr, unsigned size, u64 value)
{
    for (unsigned i = 0; i < size; ++i) {
        u32 a = addr + i;
        if (addr >= layout::kGuestPhysBase) {
            a = layout::kGuestPhysBase +
                ((addr - layout::kGuestPhysBase + i) &
                 (arch::kPhysMemSize - 1));
        }
        *resolve(a) = static_cast<u8>(value >> (8 * i));
    }
}

arch::CpuState
HiFiEmulator::cpu() const
{
    return arch::unpack_cpu_state(state_.data());
}

arch::Snapshot
HiFiEmulator::snapshot() const
{
    return {cpu(), ram_, cycles_};
}

void
HiFiEmulator::snapshot_into(arch::Snapshot &out) const
{
    out.cpu = cpu();
    out.ram = ram_;
    out.cycles = cycles_;
}

void
HiFiEmulator::record_exception(u8 vector, u32 error, bool has_error,
                               u32 cr2, bool set_cr2)
{
    arch::CpuState c = cpu();
    c.exception.vector = vector;
    c.exception.error_code = error;
    c.exception.has_error_code = has_error;
    if (set_cr2)
        c.cr2 = cr2;
    c.halted = 1;
    arch::pack_cpu_state(c, state_.data());
}

bool
HiFiEmulator::step_compiled(const arch::DecodedInsn &insn)
{
    if (!compiled_checked_) {
        if (compiled_table().semantics_hash != compiled_expected_hash()) {
            throw support::FaultError(
                support::FaultClass::CodegenMismatch,
                "compiled semantics table is stale (hash mismatch); "
                "rebuild to re-run semgen");
        }
        compiled_checked_ = true;
    }
    const CompiledEntry *entry = compiled_find(insn);
    if (entry == nullptr) {
        ++compiled_misses_;
        return false;
    }
    // Generic handlers read immediate/displacement values from the
    // param block (scratch space the decoder does not use); write them
    // before either execution below so both see the same inputs.
    if (entry->shape.params_ok) {
        store(param_block::kImm, 4, insn.imm);
        store(param_block::kDisp, 4, insn.disp);
    }

    ir::RunResult result;
    if (options_.compiled == CompiledExec::CrossCheck) {
        // Reference run: interpret the exact program the handler was
        // generated from, then rewind and let the handler replay it.
        const CompiledTable &table = compiled_table();
        const CompiledUnit &unit =
            compiled_units()[static_cast<std::size_t>(entry -
                                                      table.entries)];
        const auto state0 = state_;
        const auto scratch0 = scratch_;
        const std::vector<u8> ram0 = ram_;
        const ir::RunResult ref = ir::run_concrete(unit.program, *this);
        const auto state1 = state_;
        const auto scratch1 = scratch_;
        std::vector<u8> ram1 = std::move(ram_);
        state_ = state0;
        scratch_ = scratch0;
        ram_ = ram0;

        result = entry->handler(*this, 1u << 22);
        const bool diverged = compiled_test_mismatch_forced() ||
            result.status != ref.status ||
            result.halt_code != ref.halt_code ||
            result.steps != ref.steps || state_ != state1 ||
            scratch_ != scratch1 || ram_ != ram1;
        if (diverged) {
            throw support::FaultError(
                support::FaultClass::CodegenMismatch,
                std::string("compiled handler diverged from the IR "
                            "interpreter on ") +
                    insn.desc->mnemonic);
        }
    } else {
        result = entry->handler(*this, 1u << 22);
    }
    if (result.status != ir::RunStatus::Halted)
        panic("hifi compiled semantics did not halt");
    ++compiled_hits_;
    ++insn_count_;
    // Charged exactly once per retirement: the CrossCheck reference
    // interpretation above is bookkeeping, not a second retirement.
    charge(insn, result.halt_code);
    return true;
}

bool
HiFiEmulator::step()
{
    arch::CpuState c = cpu();
    if (c.halted)
        return false;

    // --- Instruction fetch through CS and the MMU (harness level, as
    // in the paper where exploration starts after fetch+decode). ---
    u8 buf[arch::kMaxInsnLength] = {};
    unsigned avail = 0;
    bool fetch_fault = false;
    u8 fetch_vector = 0;
    u32 fetch_error = 0;
    u32 fetch_cr2 = 0;
    const arch::SegmentReg &cs = c.seg[arch::kCs];
    const bool paging = (c.cr0 & arch::kCr0Pg) != 0;
    const bool wp = (c.cr0 & arch::kCr0Wp) != 0;
    for (unsigned i = 0; i < arch::kMaxInsnLength; ++i) {
        const u32 off = c.eip + i;
        if (off > cs.limit) {
            fetch_fault = true;
            fetch_vector = arch::kExcGp;
            fetch_error = 0;
            break;
        }
        const u32 lin = cs.base + off;
        u32 phys = lin;
        if (paging) {
            auto tr = arch::translate_linear(
                ram_.data(), c.cr3, lin, {false, false}, wp, true);
            if (!tr.ok) {
                fetch_fault = true;
                fetch_vector = arch::kExcPf;
                fetch_error = tr.pf_error;
                fetch_cr2 = lin;
                break;
            }
            phys = tr.phys;
        }
        buf[i] = ram_[phys & (arch::kPhysMemSize - 1)];
        ++avail;
    }
    if (avail == 0) {
        record_exception(fetch_vector, fetch_error, true, fetch_cr2,
                         fetch_vector == arch::kExcPf);
        charge_fault_path();
        return false;
    }

    // --- Decode by concretely interpreting the IR decoder. ---
    std::memcpy(scratch_.data(), buf, arch::kMaxInsnLength);
    ir::RunResult dres = ir::run_concrete(decoder_, *this);
    if (dres.status != ir::RunStatus::Halted)
        panic("hifi decoder did not halt");
    const u64 pos_final = load(decoder_scratch::kPos, 4);

    if (dres.halt_code == kDecodeTooLong ||
        (pos_final > avail && fetch_fault)) {
        if (fetch_fault && avail < arch::kMaxInsnLength) {
            record_exception(fetch_vector, fetch_error, true, fetch_cr2,
                             fetch_vector == arch::kExcPf);
        } else {
            record_exception(arch::kExcGp, 0, true, 0, false);
        }
        charge_fault_path();
        return false;
    }
    if (dres.halt_code == kDecodeInvalid) {
        record_exception(arch::kExcUd, 0, false, 0, false);
        charge_fault_path();
        return false;
    }

    // --- Cross-check with the table decoder and build semantics. ---
    arch::DecodedInsn insn;
    const arch::DecodeStatus ds = arch::decode(buf, avail, insn);
    if (ds != arch::DecodeStatus::Ok ||
        insn.table_index != static_cast<int>(dres.halt_code)) {
        panic("hifi decoder disagrees with table decoder");
    }

    // --- Compiled dispatch (hifi/compiled.h). Handlers are generated
    // under compiled_build_options(); only dispatch when this
    // emulator's options agree on the behavioral knobs, and fall back
    // to the interpreter on a table miss. ---
    if (options_.compiled != CompiledExec::Off &&
        options_.hifi_far_fetch_order &&
        options_.descriptor_summary == nullptr &&
        step_compiled(insn)) {
        return true;
    }

    std::vector<u8> key(insn.bytes, insn.bytes + insn.length);
    auto it = semantics_cache_.find(key);
    if (it == semantics_cache_.end()) {
        auto prog = std::make_shared<ir::Program>(
            build_semantics(insn, options_));
        it = semantics_cache_
                 .emplace(std::move(key),
                          std::shared_ptr<const ir::Program>(
                              std::move(prog)))
                 .first;
    }

    ir::RunResult sres = ir::run_concrete(*it->second, *this);
    if (sres.status != ir::RunStatus::Halted)
        panic("hifi semantics did not halt");
    ++insn_count_;
    charge(insn, sres.halt_code);
    return true;
}

StopReason
HiFiEmulator::run(u64 max_insns)
{
    for (u64 i = 0; i < max_insns; ++i) {
        if (!step()) {
            const arch::CpuState c = cpu();
            return c.exception.present() ? StopReason::Exception
                                         : StopReason::Halted;
        }
    }
    return StopReason::InsnLimit;
}

} // namespace pokeemu::hifi
