#include "defects/defects.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/rng.h"

namespace pokeemu::defects {

const char *
defect_kind_name(DefectKind kind)
{
    switch (kind) {
      case DefectKind::Behavioral: return "behavioral";
      case DefectKind::Misbehavior: return "misbehavior";
    }
    return "?";
}

namespace {

DefectSpec
behavioral(std::string name, bool lofi::BugConfig::*knob,
           bool detectable, std::string description,
           std::vector<std::string> expected,
           std::vector<std::vector<u8>> focus)
{
    DefectSpec d;
    d.name = std::move(name);
    d.kind = DefectKind::Behavioral;
    d.detectable = detectable;
    d.description = std::move(description);
    d.knob = knob;
    d.expected_clusters = std::move(expected);
    d.focus_encodings = std::move(focus);
    return d;
}

DefectSpec
misbehavior(std::string name, lofi::Misbehavior m,
            std::string description,
            std::vector<std::vector<u8>> focus)
{
    DefectSpec d;
    d.name = std::move(name);
    d.kind = DefectKind::Misbehavior;
    d.detectable = false;
    d.description = std::move(description);
    d.misbehavior = m;
    d.expected_clusters = {};
    d.focus_encodings = std::move(focus);
    return d;
}

std::vector<DefectSpec>
build_catalogue()
{
    using B = lofi::BugConfig;
    std::vector<DefectSpec> c;

    // --- The eight classic seeded bugs (paper §6.2), promoted. ---
    c.push_back(behavioral(
        "no-segment-checks", &B::no_segment_checks, true,
        "segment limit/type/null checks skipped on data accesses",
        {"segment-limits-and-rights-not-enforced"},
        {{0x50}, {0x01, 0x08}}));
    c.push_back(behavioral(
        "leave-nonatomic", &B::leave_nonatomic, true,
        "leave updates ESP before the faultable stack read",
        {"atomicity-violation-leave"}, {{0xc9}}));
    c.push_back(behavioral(
        "cmpxchg-nonatomic", &B::cmpxchg_nonatomic, true,
        "cmpxchg checks write permission only on the equal path",
        {"atomicity-violation-cmpxchg"}, {{0x0f, 0xb1, 0x0b}}));
    c.push_back(behavioral(
        "iret-pop-order", &B::iret_pop_order, true,
        "iret pops stack items outermost-to-innermost",
        {"iret-pop-order"}, {{0xcf}}));
    c.push_back(behavioral(
        "rdmsr-no-gp", &B::rdmsr_no_gp, true,
        "rdmsr/wrmsr of an unknown MSR does not raise #GP",
        {"rdmsr-no-gp-on-invalid-msr"}, {{0x0f, 0x32}, {0x0f, 0x30}}));
    c.push_back(behavioral(
        "no-accessed-flag", &B::no_accessed_flag, true,
        "segment loads do not set the descriptor accessed flag",
        {"segment-accessed-flag-not-set"}, {{0x8e, 0xd8}}));
    c.push_back(behavioral(
        "reject-valid-encodings", &B::reject_valid_encodings, true,
        "undocumented alias encodings (shift /6, F6 /1) rejected",
        {"rejects-valid-encoding"},
        {{0xd0, 0xf0}, {0xf6, 0xc8, 0x01}}));
    c.push_back(behavioral(
        "undef-flags-divergence", &B::undef_flags_divergence, false,
        "documented-undefined flags resolved differently from "
        "hardware; deliberately filtered by the pipeline (paper §5), "
        "so non-detection is the correct outcome",
        {}, {{0xd3, 0xe0}, {0x0f, 0xbc, 0xd0}, {0xf7, 0xf3}}));

    // --- New injectable DirectCpu defects. ---
    c.push_back(behavioral(
        // Latent: the defect only shows when an 8-bit operation
        // carries/overflows out of bit 7, and no path constraint
        // forces such operand values into the minimized tests
        // (value-dependent defects evade path-coverage test suites;
        // the paper's §8 limitation, reproduced here on purpose).
        "flags-wrong-width", &B::flags_wrong_width, false,
        "8-bit ALU flags computed at 32-bit width",
        {"status-flags-divergence"},
        {{0x00, 0x08}, {0x38, 0x08}, {0x04, 0x05}, {0x3c, 0x05}}));
    c.push_back(behavioral(
        "far-fetch-reordered", &B::far_fetch_selector_first, true,
        "far pointer loads fetch the selector before the offset",
        {"far-pointer-fetch-order"},
        {{0xc4, 0x08}, {0x0f, 0xb4, 0x03}}));
    c.push_back(behavioral(
        "pte-ad-dropped", &B::pte_accessed_dirty_dropped, true,
        "page walks do not set PTE/PDE accessed and dirty bits",
        {"pte-accessed-dirty-not-set"}, {{0x50}, {0x74, 0x00}}));
    c.push_back(behavioral(
        "seg-limit-off-by-one", &B::seg_limit_off_by_one, false,
        "segment-limit comparison off by one (last valid byte "
        "faults); evades tests whose accesses were minimized away "
        "from the exact boundary",
        {"segment-limits-and-rights-not-enforced"},
        {{0x50}, {0x01, 0x08}, {0xc9}}));
    c.push_back(behavioral(
        "wrmsr-truncated", &B::wrmsr_truncated, false,
        "wrmsr stores only the low 16 bits of EAX; value-dependent, "
        "so it evades tests minimized toward the zeroed baseline",
        {"msr-write-truncated"}, {{0x0f, 0x30}}));

    // --- Timing defects (pose64-style): architectural state stays
    // right, only cycle totals go wrong. Detectable solely as
    // TimingDivergence with PipelineOptions::timing on, which the
    // variant campaign enables for them (DefectSpec::timing). ---
    c.push_back(behavioral(
        // Every charge in the cost model is even (timing/cost_model.h),
        // so halving is exact and the rounded ratio lands precisely in
        // the 2x bucket on every test.
        "half-cycle-accounting", &B::half_cycle_accounting, true,
        "every cycle charge halved (a 2x systematic undercount)",
        {"cycles-2x-under-lofi"},
        {{0x50}, {0x01, 0x08}, {0xc9}}));
    c.back().timing = true;
    c.push_back(behavioral(
        "mem-cost-dropped", &B::mem_access_cost_dropped, true,
        "per-memory-access cost never accumulated; the undercount "
        "ratio depends on each test's memory traffic, so detections "
        "spread across the under-side ratio buckets",
        {"cycles-under-lofi", "cycles-2x-under-lofi",
         "cycles-3x-under-lofi", "cycles-4x+-under-lofi"},
        {{0x50}, {0x01, 0x08}, {0xc9}}));
    c.back().timing = true;

    // --- Misbehaviour classes: containment, not detection. ---
    c.push_back(misbehavior(
        "backend-crash", lofi::Misbehavior::Crash,
        "the variant backend throws entering its run loop",
        {{0x50}, {0x74, 0x00}}));
    c.push_back(misbehavior(
        "backend-hang", lofi::Misbehavior::Hang,
        "the variant backend ignores the instruction cap; only the "
        "per-run watchdog ends it",
        {{0x50}, {0x74, 0x00}}));
    c.push_back(misbehavior(
        "snapshot-corruption", lofi::Misbehavior::CorruptSnapshot,
        "the variant backend emits a short RAM dump",
        {{0x50}, {0x74, 0x00}}));

    return c;
}

/** Decode one focus encoding to its table index. */
int
focus_index(const std::vector<u8> &encoding)
{
    std::vector<u8> buf = encoding;
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    if (arch::decode(buf.data(), buf.size(), insn) !=
        arch::DecodeStatus::Ok) {
        throw std::logic_error(
            "defects: focus encoding failed to decode");
    }
    return insn.table_index;
}

bool
is_timeout_cluster(const std::string &name)
{
    return name.rfind("timeout-only-", 0) == 0;
}

} // namespace

const std::vector<DefectSpec> &
catalogue()
{
    static const std::vector<DefectSpec> c = build_catalogue();
    return c;
}

const DefectSpec *
find_defect(const std::string &name)
{
    for (const DefectSpec &d : catalogue()) {
        if (d.name == name)
            return &d;
    }
    return nullptr;
}

lofi::BugConfig
apply_defects(const std::vector<std::size_t> &defects)
{
    lofi::BugConfig bugs = lofi::BugConfig::none();
    for (std::size_t i : defects) {
        const DefectSpec &d = catalogue().at(i);
        if (d.knob != nullptr)
            bugs.*d.knob = true;
    }
    return bugs;
}

MutationPlan
single_defect_plan()
{
    MutationPlan plan;
    for (std::size_t i = 0; i < catalogue().size(); ++i)
        plan.variants.push_back({catalogue()[i].name, {i}});
    return plan;
}

MutationPlan
pair_defect_plan(u64 seed, std::size_t count)
{
    std::vector<std::size_t> behavioral_idx;
    for (std::size_t i = 0; i < catalogue().size(); ++i) {
        if (catalogue()[i].kind == DefectKind::Behavioral)
            behavioral_idx.push_back(i);
    }
    const std::size_t n = behavioral_idx.size();
    const std::size_t max_pairs = n * (n - 1) / 2;
    count = std::min(count, max_pairs);

    MutationPlan plan;
    Rng rng(seed);
    std::set<std::pair<std::size_t, std::size_t>> chosen;
    while (chosen.size() < count) {
        std::size_t a = rng.below(n);
        std::size_t b = rng.below(n);
        if (a == b)
            continue;
        if (a > b)
            std::swap(a, b);
        if (!chosen.insert({a, b}).second)
            continue;
        const std::size_t ia = behavioral_idx[a];
        const std::size_t ib = behavioral_idx[b];
        plan.variants.push_back(
            {"pair:" + catalogue()[ia].name + "+" +
                 catalogue()[ib].name,
             {ia, ib}});
    }
    return plan;
}

CampaignOptions
variant_campaign(const Variant &variant, const MatrixOptions &options)
{
    CampaignOptions campaign;
    campaign.shards = options.shards;
    campaign.pipeline.max_paths_per_insn = options.max_paths;
    campaign.pipeline.seed = options.seed;
    campaign.pipeline.max_insns_per_test = options.max_insns_per_test;
    campaign.pipeline.bugs = apply_defects(variant.defects);
    campaign.pipeline.resilience.budgets.test_watchdog_insns =
        options.watchdog_insns;

    std::set<int> filter;
    for (std::size_t i : variant.defects) {
        const DefectSpec &d = catalogue().at(i);
        if (d.misbehavior != lofi::Misbehavior::None)
            campaign.pipeline.lofi_misbehavior = d.misbehavior;
        if (d.timing)
            campaign.pipeline.timing = true;
        for (const auto &encoding : d.focus_encodings)
            filter.insert(focus_index(encoding));
    }
    campaign.pipeline.instruction_filter.assign(filter.begin(),
                                                filter.end());
    return campaign;
}

double
VariantScore::precision() const
{
    return total_clusters == 0
        ? 1.0
        : static_cast<double>(matched_clusters) /
            static_cast<double>(total_clusters);
}

double
VariantScore::purity() const
{
    return total_diff_tests == 0
        ? 1.0
        : static_cast<double>(matched_tests) /
            static_cast<double>(total_diff_tests);
}

bool
VariantScore::contained() const
{
    return campaign_complete &&
        tests_executed + quarantined_backend + quarantined_execution ==
            test_programs;
}

VariantScore
score_variant(const Variant &variant, const CampaignResult &result)
{
    VariantScore score;
    score.variant = variant.name;

    std::set<std::string> expected;
    bool any_detectable = false;
    for (std::size_t i : variant.defects) {
        const DefectSpec &d = catalogue().at(i);
        score.defect_names.push_back(d.name);
        if (d.kind == DefectKind::Misbehavior)
            score.kind = DefectKind::Misbehavior;
        any_detectable = any_detectable || d.detectable;
        expected.insert(d.expected_clusters.begin(),
                        d.expected_clusters.end());
    }
    score.detectable = any_detectable;

    const PipelineStats &stats = result.merged;
    const auto score_clusters =
        [&](const harness::RootCauseClusterer &clusterer) {
            for (const harness::Cluster &c : clusterer.clusters()) {
                if (is_timeout_cluster(c.root_cause))
                    continue;
                score.observed_clusters.push_back(c.root_cause);
                ++score.total_clusters;
                score.total_diff_tests += c.count;
                if (expected.count(c.root_cause)) {
                    score.detected = true;
                    ++score.matched_clusters;
                    score.matched_tests += c.count;
                }
            }
        };
    score_clusters(stats.lofi_clusters);
    // TimingDivergence clusters are scored with the same precision /
    // purity accounting: a timing defect must surface here, and any
    // spurious state-diff cluster it causes would cost precision.
    score_clusters(stats.lofi_timing_clusters);

    score.test_programs = stats.test_programs;
    score.tests_executed = stats.tests_executed;
    score.quarantined_backend =
        stats.quarantine.count(support::Stage::Backend);
    score.quarantined_execution =
        stats.quarantine.count(support::Stage::Execution);
    score.campaign_complete = result.complete;
    return score;
}

double
MatrixResult::recall() const
{
    return detectable_total == 0
        ? 1.0
        : static_cast<double>(detectable_found) /
            static_cast<double>(detectable_total);
}

bool
MatrixResult::containment_complete() const
{
    for (const VariantScore &s : scores) {
        if (!s.contained())
            return false;
    }
    return !scores.empty();
}

MatrixResult
run_matrix(const MatrixOptions &options)
{
    MutationPlan plan = single_defect_plan();
    if (options.include_pairs) {
        MutationPlan pairs =
            pair_defect_plan(options.pair_seed, options.pair_count);
        plan.variants.insert(plan.variants.end(),
                             pairs.variants.begin(),
                             pairs.variants.end());
    }

    MatrixResult result;
    for (const Variant &variant : plan.variants) {
        const bool is_misbehavior = std::any_of(
            variant.defects.begin(), variant.defects.end(),
            [](std::size_t i) {
                return catalogue()[i].kind == DefectKind::Misbehavior;
            });
        if (is_misbehavior && !options.include_misbehavior)
            continue;
        if (!options.only.empty() &&
            std::find(options.only.begin(), options.only.end(),
                      variant.name) == options.only.end()) {
            continue;
        }

        const CampaignResult campaign =
            run_campaign(variant_campaign(variant, options));
        VariantScore score = score_variant(variant, campaign);

        // Per-class rollup covers single-defect variants only: a pair
        // variant's observations cannot be attributed to one class.
        if (variant.defects.size() == 1) {
            const DefectSpec &d = catalogue()[variant.defects[0]];
            ClassScore cls;
            cls.defect = d.name;
            cls.kind = d.kind;
            cls.detectable = d.detectable;
            cls.detected = score.detected;
            cls.contained = score.contained();
            cls.precision = score.precision();
            cls.purity = score.purity();
            result.classes.push_back(cls);
            if (d.detectable) {
                ++result.detectable_total;
                result.detectable_found += score.detected;
            }
            if (d.kind == DefectKind::Misbehavior) {
                ++result.misbehavior_total;
                result.misbehavior_contained += score.contained();
            }
        }
        result.scores.push_back(std::move(score));
    }
    return result;
}

std::string
matrix_table(const MatrixResult &result)
{
    std::ostringstream os;
    os << "variant                                   kind         "
          "detect  prec   purity contained\n";
    for (const VariantScore &s : result.scores) {
        os << "  " << s.variant;
        if (s.variant.size() >= 40)
            os << ' ';
        for (std::size_t i = s.variant.size(); i < 40; ++i)
            os << ' ';
        os << defect_kind_name(s.kind);
        for (std::size_t i =
                 std::string(defect_kind_name(s.kind)).size();
             i < 13; ++i)
            os << ' ';
        char buf[64];
        std::snprintf(buf, sizeof buf, "%-8s%.2f   %.2f   %s",
                      s.detected ? "yes"
                                 : (s.detectable ? "MISS" : "-"),
                      s.precision(), s.purity(),
                      s.contained() ? "yes" : "NO");
        os << buf << "\n";
    }
    os << "recall over detectable classes: "
       << result.detectable_found << "/" << result.detectable_total
       << "\n";
    os << "misbehaving variants contained: "
       << result.misbehavior_contained << "/"
       << result.misbehavior_total << "\n";
    return os.str();
}

void
write_matrix_json(std::FILE *f, const MatrixResult &result)
{
    std::fprintf(f, "  \"recall\": %.4f,\n", result.recall());
    std::fprintf(f, "  \"detectable_total\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.detectable_total));
    std::fprintf(f, "  \"detectable_found\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.detectable_found));
    std::fprintf(f, "  \"misbehavior_total\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.misbehavior_total));
    std::fprintf(f, "  \"misbehavior_contained\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.misbehavior_contained));
    std::fprintf(f, "  \"variants\": [\n");
    for (std::size_t i = 0; i < result.scores.size(); ++i) {
        const VariantScore &s = result.scores[i];
        std::fprintf(f, "    {\"variant\": \"%s\", ",
                     s.variant.c_str());
        std::fprintf(f, "\"kind\": \"%s\", ",
                     defect_kind_name(s.kind));
        std::fprintf(f, "\"detectable\": %s, ",
                     s.detectable ? "true" : "false");
        std::fprintf(f, "\"detected\": %s, ",
                     s.detected ? "true" : "false");
        std::fprintf(f, "\"precision\": %.4f, ", s.precision());
        std::fprintf(f, "\"purity\": %.4f, ", s.purity());
        std::fprintf(f, "\"tests\": %llu, ",
                     static_cast<unsigned long long>(s.test_programs));
        std::fprintf(f, "\"executed\": %llu, ",
                     static_cast<unsigned long long>(
                         s.tests_executed));
        std::fprintf(f, "\"quarantined_backend\": %llu, ",
                     static_cast<unsigned long long>(
                         s.quarantined_backend));
        std::fprintf(f, "\"contained\": %s, ",
                     s.contained() ? "true" : "false");
        std::fprintf(f, "\"clusters\": [");
        for (std::size_t c = 0; c < s.observed_clusters.size(); ++c) {
            std::fprintf(f, "%s\"%s\"", c ? ", " : "",
                         s.observed_clusters[c].c_str());
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < result.scores.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
}

} // namespace pokeemu::defects
