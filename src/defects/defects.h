/**
 * @file
 * Seeded-defect backend corpus: mutation-derived Lo-Fi variants with
 * detection scoring.
 *
 * The paper's claim is that path-exploration-lifted tests catch real
 * emulator fidelity bugs, but a single Lo-Fi backend with one fixed
 * bug set gives no ground-truth *recall* measurement. This module
 * turns the pipeline into a scored bug-finding benchmark:
 *
 *  - DefectSpec / catalogue(): every injectable defect the backend
 *    supports — the eight classic lofi::BugConfig knobs, five deeper
 *    DirectCpu defects (wrong flag widths, reordered paired memory
 *    accesses, dropped PTE accessed/dirty updates, off-by-one segment
 *    limits, truncated MSR writes), and three *misbehaviour* classes
 *    (crash, hang, snapshot corruption) that exercise containment
 *    rather than detection. The classes mirror the deviation taxonomy
 *    of the ARM deviation-locating work (PAPERS.md).
 *  - MutationPlan: deterministic seeded derivation of variant
 *    backends — every single-defect mutant plus seeded k=2 pairs.
 *  - run_matrix(): run the sharded campaign against each variant
 *    (each mutates the *patched* emulator, BugConfig::none(), so any
 *    observed cluster is attributable to the seeded defect alone) and
 *    score recall / precision / cluster purity per defect class.
 */
#ifndef POKEEMU_DEFECTS_DEFECTS_H
#define POKEEMU_DEFECTS_DEFECTS_H

#include <cstdio>
#include <string>
#include <vector>

#include "pokeemu/shard.h"

namespace pokeemu::defects {

/** How a catalogue entry manifests. */
enum class DefectKind : u8 {
    Behavioral,  ///< Wrong-but-well-formed results; scored on recall.
    Misbehavior, ///< Crash/hang/corruption; scored on containment.
};

const char *defect_kind_name(DefectKind kind);

/** One injectable defect. */
struct DefectSpec
{
    std::string name;
    DefectKind kind = DefectKind::Behavioral;
    /**
     * Whether the lifted test suite is expected to detect the defect
     * (recall is scored over detectable entries only). The negatives
     * are findings in their own right: documented-undefined
     * divergence is deliberately filtered (paper §5), and
     * value-dependent defects (truncated MSR writes) or exact
     * boundary conditions (off-by-one limits) can evade tests whose
     * operands were minimized toward the baseline state.
     */
    bool detectable = true;
    std::string description;
    /** BugConfig member the defect toggles (Behavioral only). */
    bool lofi::BugConfig::*knob = nullptr;
    /** Misbehaviour class (Misbehavior only). */
    lofi::Misbehavior misbehavior = lofi::Misbehavior::None;
    /** The defect is observable only through cycle accounting
     *  (architectural state stays right); variant campaigns seeding it
     *  run with PipelineOptions::timing on, and its expected clusters
     *  are TimingDivergence buckets. */
    bool timing = false;
    /** Cluster names counted as a correct detection. */
    std::vector<std::string> expected_clusters;
    /** Encodings of instructions that expose the defect (the variant
     *  campaign's instruction filter is their union). */
    std::vector<std::vector<u8>> focus_encodings;
};

/** The full defect catalogue (stable order; names unique). */
const std::vector<DefectSpec> &catalogue();

/** Find a catalogue entry by name (nullptr when unknown). */
const DefectSpec *find_defect(const std::string &name);

/** BugConfig::none() with the given catalogue entries applied
 *  (Misbehavior entries contribute no knob). */
lofi::BugConfig apply_defects(const std::vector<std::size_t> &defects);

/** One mutation-derived variant backend. */
struct Variant
{
    std::string name;
    std::vector<std::size_t> defects; ///< Catalogue indices.
};

/** A deterministic set of variants to run. */
struct MutationPlan
{
    std::vector<Variant> variants;
};

/** Every single-defect mutant, in catalogue order. */
MutationPlan single_defect_plan();

/**
 * Seeded k=2 mutants: @p count distinct unordered pairs of
 * *behavioral* catalogue entries, chosen by a seeded Rng. The same
 * seed always yields the same plan (variant names include both defect
 * names, e.g. "pair:leave-nonatomic+wrmsr-truncated").
 */
MutationPlan pair_defect_plan(u64 seed, std::size_t count);

/** Matrix-wide knobs. */
struct MatrixOptions
{
    /** Per-instruction path cap for each variant campaign. */
    u64 max_paths = 24;
    u64 seed = 1;
    /** Shard count for each variant campaign. */
    u32 shards = 1;
    /** Per-test Lo-Fi watchdog (instructions); keeps hang variants
     *  deterministic — see BudgetOptions::test_watchdog_insns. */
    u64 watchdog_insns = 1u << 15;
    u64 max_insns_per_test = 1u << 14;
    /** Include the seeded k=2 pair variants. */
    bool include_pairs = false;
    std::size_t pair_count = 4;
    u64 pair_seed = 7;
    /** Include the crash/hang/corruption variants. */
    bool include_misbehavior = true;
    /** Restrict to these variant names (empty = all planned). */
    std::vector<std::string> only;
};

/** The campaign configuration one variant runs under. */
CampaignOptions variant_campaign(const Variant &variant,
                                 const MatrixOptions &options);

/** One variant's scored outcome. */
struct VariantScore
{
    std::string variant;
    std::vector<std::string> defect_names;
    DefectKind kind = DefectKind::Behavioral;
    bool detectable = false; ///< Any seeded defect is detectable.
    bool detected = false;   ///< An expected cluster was observed.
    /** Cluster-level precision: expected / observed non-timeout
     *  clusters. */
    u64 matched_clusters = 0;
    u64 total_clusters = 0;
    /** Test-level purity: tests in expected clusters / tests in any
     *  non-timeout cluster. */
    u64 matched_tests = 0;
    u64 total_diff_tests = 0;
    /** Containment accounting (all variants; decisive for
     *  Misbehavior ones). */
    u64 test_programs = 0;
    u64 tests_executed = 0;
    u64 quarantined_backend = 0;
    u64 quarantined_execution = 0;
    bool campaign_complete = false;
    std::vector<std::string> observed_clusters;

    double precision() const;
    double purity() const;
    /** Campaign finished and every non-executed test is ledgered. */
    bool contained() const;
};

/** Score one variant from its campaign result. */
VariantScore score_variant(const Variant &variant,
                           const CampaignResult &result);

/** Per-defect-class rollup over single-defect variants. */
struct ClassScore
{
    std::string defect;
    DefectKind kind = DefectKind::Behavioral;
    bool detectable = false;
    bool detected = false;
    bool contained = false;
    double precision = 0.0;
    double purity = 0.0;
};

/** The whole matrix. */
struct MatrixResult
{
    std::vector<VariantScore> scores;
    std::vector<ClassScore> classes;
    u64 detectable_total = 0;
    u64 detectable_found = 0;
    u64 misbehavior_total = 0;
    u64 misbehavior_contained = 0;

    /** Recall over detectable single-defect classes. */
    double recall() const;
    bool recall_complete() const
    {
        return detectable_found == detectable_total;
    }
    /** Every variant (including misbehaving ones) fully contained. */
    bool containment_complete() const;
};

/** Run the planned variants; see file comment. */
MatrixResult run_matrix(const MatrixOptions &options);

/** Human-readable per-variant + per-class table. */
std::string matrix_table(const MatrixResult &result);

/** BENCH_defects.json-style rows (shared by tools/ and bench/). */
void write_matrix_json(std::FILE *f, const MatrixResult &result);

} // namespace pokeemu::defects

#endif // POKEEMU_DEFECTS_DEFECTS_H
