#include "analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace pokeemu::analysis {

namespace {

using ir::Expr;
using ir::ExprRef;

/** Inclusive byte range a symbolic store may have hit. */
using ClobberRange = std::pair<u32, u32>;

constexpr std::size_t kMaxPreds = 48;
constexpr std::size_t kMaxClobberRanges = 16;
constexpr u32 kAddrMax = 0xffffffffu;

void
clobber_insert(std::vector<ClobberRange> &ranges, u32 lo, u32 hi)
{
    ranges.emplace_back(lo, hi);
    std::sort(ranges.begin(), ranges.end());
    std::vector<ClobberRange> merged;
    for (const auto &iv : ranges) {
        if (!merged.empty() &&
            (iv.first <= merged.back().second ||
             iv.first == merged.back().second + 1))
            merged.back().second = std::max(merged.back().second, iv.second);
        else
            merged.push_back(iv);
    }
    if (merged.size() > kMaxClobberRanges)
        merged = {{merged.front().first, merged.back().second}};
    ranges = std::move(merged);
}

std::vector<ClobberRange>
clobber_union(const std::vector<ClobberRange> &a,
              const std::vector<ClobberRange> &b)
{
    std::vector<ClobberRange> r = a;
    for (const auto &iv : b)
        clobber_insert(r, iv.first, iv.second);
    return r;
}

bool
clobber_contains(const std::vector<ClobberRange> &ranges, u32 addr)
{
    for (const auto &iv : ranges)
        if (addr >= iv.first && addr <= iv.second)
            return true;
    return false;
}

/** One byte of abstract memory at a constant address. */
struct MemCell
{
    ExprRef value;
    /** Overwritten on every path reaching this point. */
    bool always = false;
};

/**
 * Merged abstract state at a program point: one symbolic value per
 * slot, paths folded together with join choice variables. `preds`
 * lists 1-bit expressions true on every path reaching the point.
 */
struct AbsState
{
    bool reachable = false;
    std::vector<ExprRef> temps; ///< Null = not assigned yet.
    std::map<u32, MemCell> mem;
    std::vector<ClobberRange> clobber;
    std::vector<ExprRef> preds;
};

bool
preds_contain(const std::vector<ExprRef> &preds, const ExprRef &e)
{
    for (const auto &p : preds)
        if (Expr::equal(p, e))
            return true;
    return false;
}

void
push_pred(AbsState &st, const ExprRef &cond)
{
    if (cond->is_const() || preds_contain(st.preds, cond))
        return;
    if (st.preds.size() < kMaxPreds)
        st.preds.push_back(cond);
}

bool
states_equal(const AbsState &a, const AbsState &b)
{
    if (a.reachable != b.reachable)
        return false;
    if (!a.reachable)
        return true;
    if (a.clobber != b.clobber)
        return false;
    if (a.temps.size() != b.temps.size() ||
        a.mem.size() != b.mem.size() || a.preds.size() != b.preds.size())
        return false;
    for (std::size_t i = 0; i < a.temps.size(); ++i) {
        if (!a.temps[i] != !b.temps[i])
            return false;
        if (a.temps[i] && !Expr::equal(a.temps[i], b.temps[i]))
            return false;
    }
    auto ib = b.mem.begin();
    for (const auto &[addr, cell] : a.mem) {
        if (ib->first != addr || ib->second.always != cell.always ||
            !Expr::equal(ib->second.value, cell.value))
            return false;
        ++ib;
    }
    for (std::size_t i = 0; i < a.preds.size(); ++i)
        if (!Expr::equal(a.preds[i], b.preds[i]))
            return false;
    return true;
}

/** Does `a true` force `b false` (or vice versa), structurally? */
bool
is_negation_of(const ExprRef &a, const ExprRef &b)
{
    if (a->kind() == ir::ExprKind::UnOp && a->unop() == ir::UnOpKind::Not &&
        a->width() == 1 && Expr::equal(a->a(), b))
        return true;
    if (b->kind() == ir::ExprKind::UnOp && b->unop() == ir::UnOpKind::Not &&
        b->width() == 1 && Expr::equal(b->a(), a))
        return true;
    if (a->kind() != ir::ExprKind::BinOp || b->kind() != ir::ExprKind::BinOp)
        return false;
    const auto ka = a->binop(), kb = b->binop();
    const bool straight = Expr::equal(a->a(), b->a()) &&
                          Expr::equal(a->b(), b->b());
    const bool swapped = Expr::equal(a->a(), b->b()) &&
                         Expr::equal(a->b(), b->a());
    using K = ir::BinOpKind;
    if (((ka == K::Eq && kb == K::Ne) || (ka == K::Ne && kb == K::Eq)) &&
        straight)
        return true;
    // ult(x, y) <=> !ule(y, x), and the signed twins.
    if (((ka == K::ULt && kb == K::ULe) || (ka == K::ULe && kb == K::ULt)) &&
        swapped)
        return true;
    if (((ka == K::SLt && kb == K::SLe) || (ka == K::SLe && kb == K::SLt)) &&
        swapped)
        return true;
    return false;
}

/** State and exit-code expression at one reachable Halt. */
struct ExitState
{
    u32 stmt = 0;
    ExprRef code;
    std::map<u32, MemCell> mem;
    std::vector<ClobberRange> clobber;
};

/** Results only the final (recording) pass fills in. */
struct FinalData
{
    std::vector<Decision> decisions;
    std::vector<bool> stmt_reachable;
    std::vector<std::optional<u32>> const_addr;
    std::vector<ExitState> exits;
    WriteSummary writes;
};

/**
 * The fixpoint engine. One instance per (program, config) run; owns
 * the analysis-invented variables so the flags oracle can classify
 * them after run().
 */
class Engine
{
  public:
    Engine(const ir::Program &program, const Cfg &cfg,
           const DataflowConfig &config)
        : program_(program), cfg_(cfg), config_(config)
    {
    }

    ProgramFacts run();

    const std::vector<ExitState> &exits() const { return final_.exits; }

    /** Is @p var_id an opaque analysis variable (unknown content)? */
    bool is_opaque(u32 var_id) const
    {
        return opaque_ids_.count(var_id) != 0;
    }

    /**
     * May @p var_id carry an untouched initial byte of the state
     * image? True for clobber reads (a symbolic store may or may not
     * have hit the byte), widened loop slots, and undefined temps —
     * but not for symbolic-load results, which are genuine machine
     * reads: a value computed from one is still deterministically
     * written wherever it is stored.
     */
    bool may_keep_initial(u32 var_id) const
    {
        return kept_ids_.count(var_id) != 0;
    }

    ExprRef initial_byte(u32 addr);

    /** The byte value a load at @p addr sees in @p exit's state. */
    ExprRef exit_byte(const ExitState &exit, u32 addr)
    {
        return read_byte(exit.mem, exit.clobber, addr,
                         "x:" + std::to_string(exit.stmt));
    }

    /** How much the analysis knows about an invented variable. */
    enum class VarClass : u8
    {
        Transparent, ///< Defined function of the inputs (initial
                     ///< bytes, join choices).
        OpaqueRead,  ///< Unknown value the program genuinely read
                     ///< (symbolic-address loads).
        OpaqueKept,  ///< Unknown value that may be an untouched
                     ///< initial byte (clobber reads, widened slots,
                     ///< undefined temps).
    };

  private:
    /**
     * Deterministically-keyed analysis variable: the same key always
     * yields the same variable within one run, which is what makes
     * re-executing blocks across fixpoint rounds stable.
     */
    ExprRef keyed_var(const std::string &key, unsigned width,
                      VarClass cls);

    ExprRef resolve(const ExprRef &x, const AbsState &st);

    ExprRef read_byte(const std::map<u32, MemCell> &mem,
                      const std::vector<ClobberRange> &clobber, u32 addr,
                      const std::string &ctx);

    FactEnv make_env(const AbsState &st);

    Decision decide(BlockId block, const ExprRef &cond, const AbsState &st);

    AbsState entry_state();

    using EdgeOut = std::pair<BlockId, AbsState>;
    std::vector<EdgeOut> exec_block(BlockId b, const AbsState &in,
                                    bool final);

    AbsState join2(const AbsState &a, const AbsState &b,
                   const std::string &key);

    AbsState widen(const AbsState &prev, const AbsState &next, BlockId s);

    void compute_cycle_taint();

    BlockId target_block(ir::Label label) const
    {
        return cfg_.block_of(program_.label_pos[label]);
    }

    const ir::Program &program_;
    const Cfg &cfg_;
    const DataflowConfig &config_;

    std::map<std::string, ExprRef> keyed_;
    u32 next_id_ = 0;
    std::unordered_set<u32> opaque_ids_;
    std::unordered_set<u32> kept_ids_;
    std::unordered_map<u32, ExprRef> init_bytes_;

    std::vector<bool> cycle_tainted_;
    FinalData final_;
};

ExprRef
Engine::keyed_var(const std::string &key, unsigned width, VarClass cls)
{
    auto it = keyed_.find(key);
    if (it != keyed_.end())
        return it->second;
    const u32 id = config_.private_var_base + next_id_++;
    auto v = ir::E::var(id, "df:" + key, width);
    if (cls != VarClass::Transparent)
        opaque_ids_.insert(id);
    if (cls == VarClass::OpaqueKept)
        kept_ids_.insert(id);
    keyed_.emplace(key, v);
    return v;
}

ExprRef
Engine::initial_byte(u32 addr)
{
    auto it = init_bytes_.find(addr);
    if (it != init_bytes_.end())
        return it->second;
    ExprRef v = config_.initial_byte
        ? config_.initial_byte(addr)
        : keyed_var("i:" + std::to_string(addr), 8,
                    VarClass::Transparent);
    init_bytes_.emplace(addr, v);
    return v;
}

ExprRef
Engine::resolve(const ExprRef &x, const AbsState &st)
{
    return ir::substitute(x, [&](const Expr &leaf) -> ExprRef {
        if (leaf.kind() != ir::ExprKind::Temp)
            return nullptr;
        const auto &v = st.temps[leaf.temp_id()];
        if (v)
            return v;
        // Verifier-clean programs define temps before use on every
        // path; an undefined slot can only feed dead code.
        return keyed_var("u:t" + std::to_string(leaf.temp_id()),
                         leaf.width(), VarClass::OpaqueKept);
    });
}

ExprRef
Engine::read_byte(const std::map<u32, MemCell> &mem,
                  const std::vector<ClobberRange> &clobber, u32 addr,
                  const std::string &ctx)
{
    auto it = mem.find(addr);
    if (it != mem.end())
        return it->second.value;
    if (clobber_contains(clobber, addr))
        return keyed_var(ctx + ":" + std::to_string(addr), 8,
                         VarClass::OpaqueKept);
    return initial_byte(addr);
}

FactEnv
Engine::make_env(const AbsState &st)
{
    FactEnv env;
    for (const auto &a : config_.assumes)
        env.assume(a);
    for (const auto &p : st.preds)
        env.assume(p);
    return env;
}

Decision
Engine::decide(BlockId block, const ExprRef &cond, const AbsState &st)
{
    // A condition that resolves to a literal constant is constant on
    // every dynamic execution, loops included: no free variable is
    // involved, so iteration-reused analysis variables cannot have
    // conflated distinct values.
    if (cond->is_const())
        return cond->value() ? Decision::AlwaysTrue : Decision::AlwaysFalse;
    if (cycle_tainted_[block])
        return Decision::Unknown;
    for (const auto &p : st.preds) {
        if (Expr::equal(p, cond))
            return Decision::AlwaysTrue;
        if (is_negation_of(p, cond))
            return Decision::AlwaysFalse;
    }
    FactEnv env = make_env(st);
    const Fact f = env.eval(cond);
    if (auto d = f.decide())
        return *d ? Decision::AlwaysTrue : Decision::AlwaysFalse;
    return Decision::Unknown;
}

AbsState
Engine::entry_state()
{
    AbsState st;
    st.reachable = true;
    st.temps.resize(program_.num_temps());
    for (const auto &a : config_.assumes)
        push_pred(st, a);
    return st;
}

std::vector<Engine::EdgeOut>
Engine::exec_block(BlockId b, const AbsState &in, bool final)
{
    const BasicBlock &blk = cfg_.blocks()[b];
    AbsState st = in;
    for (u32 i = blk.first; i < blk.end; ++i) {
        const ir::Stmt &s = program_.stmts[i];
        if (final)
            final_.stmt_reachable[i] = true;
        switch (s.kind) {
          case ir::StmtKind::Assign:
            st.temps[s.temp] = resolve(s.expr, st);
            break;
          case ir::StmtKind::Load: {
            const ExprRef addr = resolve(s.addr, st);
            if (addr->is_const()) {
                const u32 a = static_cast<u32>(addr->value());
                if (final)
                    final_.const_addr[i] = a;
                // Assemble bytes exactly like SymbolicMemory::load so
                // structurally-equal values stay structurally equal.
                ExprRef value = read_byte(st.mem, st.clobber, a,
                                          "c:" + std::to_string(i));
                for (unsigned k = 1; k < s.size; ++k)
                    value = ir::E::concat(
                        read_byte(st.mem, st.clobber, a + k,
                                  "c:" + std::to_string(i)),
                        value);
                st.temps[s.temp] = value;
            } else {
                st.temps[s.temp] = keyed_var("l:" + std::to_string(i),
                                             8 * s.size,
                                             VarClass::OpaqueRead);
            }
            break;
          }
          case ir::StmtKind::Store: {
            const ExprRef addr = resolve(s.addr, st);
            const ExprRef value = resolve(s.expr, st);
            if (addr->is_const()) {
                const u32 a = static_cast<u32>(addr->value());
                if (final) {
                    final_.const_addr[i] = a;
                    for (unsigned k = 0; k < s.size; ++k)
                        final_.writes.may_bytes.insert(a + k);
                }
                for (unsigned k = 0; k < s.size; ++k)
                    st.mem[a + k] = {ir::E::extract(value, 8 * k, 8), true};
            } else {
                FactEnv env = make_env(st);
                const Fact f = env.eval(addr);
                u64 lo = f.bottom ? 0 : f.lo;
                u64 hi = f.bottom ? kAddrMax : f.hi;
                if (hi + s.size - 1 > kAddrMax) {
                    // The store could wrap modulo 2^32.
                    lo = 0;
                    hi = kAddrMax;
                } else {
                    hi += s.size - 1;
                }
                clobber_insert(st.clobber, static_cast<u32>(lo),
                               static_cast<u32>(hi));
                st.mem.erase(st.mem.lower_bound(static_cast<u32>(lo)),
                             st.mem.upper_bound(static_cast<u32>(hi)));
                if (final) {
                    auto &w = final_.writes;
                    if (!w.symbolic_store) {
                        w.clobber_lo = static_cast<u32>(lo);
                        w.clobber_hi = static_cast<u32>(hi);
                    } else {
                        w.clobber_lo =
                            std::min(w.clobber_lo, static_cast<u32>(lo));
                        w.clobber_hi =
                            std::max(w.clobber_hi, static_cast<u32>(hi));
                    }
                    w.symbolic_store = true;
                }
            }
            break;
          }
          case ir::StmtKind::CJmp: {
            const ExprRef cond = resolve(s.expr, st);
            const Decision d = decide(b, cond, st);
            if (final)
                final_.decisions[i] = d;
            const BlockId tb = target_block(s.target_true);
            const BlockId fb = target_block(s.target_false);
            std::vector<EdgeOut> outs;
            if (d != Decision::AlwaysFalse) {
                AbsState t_out = st;
                push_pred(t_out, cond);
                outs.emplace_back(tb, std::move(t_out));
            }
            if (d != Decision::AlwaysTrue) {
                AbsState f_out = st;
                push_pred(f_out, ir::E::lnot(cond));
                outs.emplace_back(fb, std::move(f_out));
            }
            return outs;
          }
          case ir::StmtKind::Jmp:
            return {{target_block(s.target_true), std::move(st)}};
          case ir::StmtKind::Assume: {
            const ExprRef cond = resolve(s.expr, st);
            const Decision d = decide(b, cond, st);
            if (final)
                final_.decisions[i] = d;
            if (d == Decision::AlwaysFalse)
                return {}; // Path abandoned.
            push_pred(st, cond);
            break;
          }
          case ir::StmtKind::Halt: {
            if (final) {
                ExitState x;
                x.stmt = i;
                x.code = resolve(s.expr, st);
                x.mem = st.mem;
                x.clobber = st.clobber;
                final_.exits.push_back(std::move(x));
            }
            return {};
          }
          case ir::StmtKind::Comment:
            break;
        }
    }
    if (blk.falls_off_end)
        return {}; // Verifier-clean programs never get here.
    return {{cfg_.block_of(blk.end), std::move(st)}};
}

AbsState
Engine::join2(const AbsState &a, const AbsState &b, const std::string &key)
{
    AbsState r;
    r.reachable = true;
    // Choice true selects the a side; one variable per join edge keeps
    // correlated slots correlated (exact for two-way joins).
    const ExprRef choice = keyed_var("j:" + key, 1,
                                     VarClass::Transparent);
    r.temps.resize(a.temps.size());
    for (std::size_t t = 0; t < a.temps.size(); ++t) {
        if (!a.temps[t] || !b.temps[t])
            continue;
        r.temps[t] = Expr::equal(a.temps[t], b.temps[t])
            ? a.temps[t]
            : ir::E::ite(choice, a.temps[t], b.temps[t]);
    }
    r.clobber = clobber_union(a.clobber, b.clobber);
    auto ia = a.mem.begin();
    auto ib = b.mem.begin();
    while (ia != a.mem.end() || ib != b.mem.end()) {
        u32 addr;
        if (ia == a.mem.end())
            addr = ib->first;
        else if (ib == b.mem.end())
            addr = ia->first;
        else
            addr = std::min(ia->first, ib->first);
        const bool in_a = ia != a.mem.end() && ia->first == addr;
        const bool in_b = ib != b.mem.end() && ib->first == addr;
        const std::string ctx = "jc:" + key;
        const ExprRef va = in_a ? ia->second.value
                                : read_byte(a.mem, a.clobber, addr, ctx);
        const ExprRef vb = in_b ? ib->second.value
                                : read_byte(b.mem, b.clobber, addr, ctx);
        MemCell cell;
        cell.value = Expr::equal(va, vb) ? va : ir::E::ite(choice, va, vb);
        cell.always = in_a && ia->second.always && in_b &&
                      ib->second.always;
        r.mem.emplace(addr, std::move(cell));
        if (in_a)
            ++ia;
        if (in_b)
            ++ib;
    }
    for (const auto &p : a.preds)
        if (preds_contain(b.preds, p))
            r.preds.push_back(p);
    return r;
}

AbsState
Engine::widen(const AbsState &prev, const AbsState &next, BlockId s)
{
    if (!prev.reachable || !next.reachable)
        return next;
    AbsState r;
    r.reachable = true;
    const std::string base = "w:" + std::to_string(s);
    r.temps.resize(next.temps.size());
    for (std::size_t t = 0; t < next.temps.size(); ++t) {
        const bool stable = prev.temps[t] && next.temps[t] &&
                            Expr::equal(prev.temps[t], next.temps[t]);
        if (stable)
            r.temps[t] = next.temps[t];
        else if (prev.temps[t] || next.temps[t])
            r.temps[t] = keyed_var(base + ":t" + std::to_string(t),
                                   program_.temp_width[t],
                                   VarClass::OpaqueKept);
    }
    r.clobber = prev.clobber == next.clobber
        ? next.clobber
        : clobber_union(prev.clobber, next.clobber);
    auto keys_of = [](const std::map<u32, MemCell> &m) {
        std::vector<u32> k;
        k.reserve(m.size());
        for (const auto &[addr, cell] : m)
            k.push_back(addr);
        return k;
    };
    std::vector<u32> keys = keys_of(prev.mem);
    for (u32 k : keys_of(next.mem))
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (u32 addr : keys) {
        auto ip = prev.mem.find(addr);
        auto in = next.mem.find(addr);
        if (ip != prev.mem.end() && in != next.mem.end() &&
            ip->second.always == in->second.always &&
            Expr::equal(ip->second.value, in->second.value)) {
            r.mem.emplace(addr, in->second);
            continue;
        }
        MemCell cell;
        cell.value = keyed_var(base + ":m" + std::to_string(addr), 8,
                               VarClass::OpaqueKept);
        cell.always = ip != prev.mem.end() && ip->second.always &&
                      in != next.mem.end() && in->second.always;
        r.mem.emplace(addr, std::move(cell));
    }
    for (const auto &p : prev.preds)
        if (preds_contain(next.preds, p))
            r.preds.push_back(p);
    return r;
}

void
Engine::compute_cycle_taint()
{
    cycle_tainted_.assign(cfg_.num_blocks(), false);
    std::vector<u32> pos(cfg_.num_blocks(), ~u32{0});
    const auto &rpo = cfg_.reverse_postorder();
    for (u32 i = 0; i < rpo.size(); ++i)
        pos[rpo[i]] = i;
    // Retreating edges (target not later in RPO) over-approximate back
    // edges; everything reachable from a retreat target sits in or
    // after a loop and is tainted.
    std::vector<BlockId> work;
    for (BlockId b : rpo)
        for (BlockId succ : cfg_.blocks()[b].succs)
            if (pos[succ] != ~u32{0} && pos[succ] <= pos[b] &&
                !cycle_tainted_[succ]) {
                cycle_tainted_[succ] = true;
                work.push_back(succ);
            }
    while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        for (BlockId succ : cfg_.blocks()[b].succs)
            if (!cycle_tainted_[succ]) {
                cycle_tainted_[succ] = true;
                work.push_back(succ);
            }
    }
}

ProgramFacts
Engine::run()
{
    const u32 nb = cfg_.num_blocks();
    const u32 ns = static_cast<u32>(program_.stmts.size());
    ProgramFacts facts;
    facts.decisions.assign(ns, Decision::Unknown);
    facts.stmt_reachable.assign(ns, false);
    facts.block_reachable.assign(nb, false);
    facts.const_addr.assign(ns, std::nullopt);
    compute_cycle_taint();
    facts.cycle_tainted = cycle_tainted_;

    // In-place RPO propagation: each block's in-state is recomputed
    // from the freshest predecessor edge-outs, so an acyclic program
    // converges in one round (plus one to confirm). Only back edges
    // feed stale states and need iteration; widening is therefore
    // restricted to cycle-tainted blocks, keeping deep acyclic
    // programs fully precise regardless of the round count.
    std::vector<AbsState> in(nb);
    std::vector<std::vector<EdgeOut>> edge_outs(nb);
    bool converged = false;
    for (unsigned round = 0; round < config_.max_rounds; ++round) {
        bool changed = false;
        for (BlockId b : cfg_.reverse_postorder()) {
            AbsState acc;
            bool have = false;
            if (b == cfg_.entry()) {
                acc = entry_state();
                have = true;
            }
            for (BlockId p = 0; p < nb; ++p) {
                u32 occ = 0;
                for (const auto &[succ, out] : edge_outs[p]) {
                    if (succ != b)
                        continue;
                    const std::string key = std::to_string(b) + ":" +
                        std::to_string(p) + ":" + std::to_string(occ);
                    ++occ;
                    if (!out.reachable)
                        continue;
                    if (!have) {
                        acc = out;
                        have = true;
                    } else {
                        acc = join2(acc, out, key);
                    }
                }
            }
            AbsState merged = round + 1 >= config_.max_rounds_before_widen &&
                    cycle_tainted_[b]
                ? widen(in[b], acc, b)
                : std::move(acc);
            if (states_equal(in[b], merged))
                continue;
            changed = true;
            in[b] = std::move(merged);
            edge_outs[b] = in[b].reachable
                ? exec_block(b, in[b], /*final=*/false)
                : std::vector<EdgeOut>{};
        }
        if (!changed) {
            converged = true;
            break;
        }
    }
    facts.converged = converged;
    if (!converged)
        return facts; // analyzed stays false: no facts survive.

    final_.decisions.assign(ns, Decision::Unknown);
    final_.stmt_reachable.assign(ns, false);
    final_.const_addr.assign(ns, std::nullopt);
    for (BlockId b : cfg_.reverse_postorder()) {
        if (!in[b].reachable)
            continue;
        facts.block_reachable[b] = true;
        exec_block(b, in[b], /*final=*/true);
    }
    facts.decisions = final_.decisions;
    facts.stmt_reachable = final_.stmt_reachable;
    facts.const_addr = final_.const_addr;

    // Must-write bytes: overwritten (cell.always) at every exit.
    auto &w = final_.writes;
    bool first_exit = true;
    for (const ExitState &x : final_.exits) {
        std::set<u32> here;
        for (const auto &[addr, cell] : x.mem)
            if (cell.always)
                here.insert(addr);
        if (first_exit) {
            w.must_bytes = std::move(here);
            first_exit = false;
        } else {
            std::set<u32> keep;
            std::set_intersection(w.must_bytes.begin(), w.must_bytes.end(),
                                  here.begin(), here.end(),
                                  std::inserter(keep, keep.begin()));
            w.must_bytes = std::move(keep);
        }
    }
    facts.writes = w;

    for (u32 i = 0; i < ns; ++i) {
        if (!facts.stmt_reachable[i] ||
            facts.decisions[i] == Decision::Unknown)
            continue;
        if (program_.stmts[i].kind == ir::StmtKind::CJmp)
            ++facts.decided_cjmps;
        else if (program_.stmts[i].kind == ir::StmtKind::Assume)
            ++facts.decided_assumes;
    }
    facts.analyzed = true;
    return facts;
}

/**
 * Bit @p i of @p e as a 1-bit expression. E::extract already folds
 * through extracts, casts, concat, bitwise operators and ite; shifts
 * by constants are peeled here so flag bits routed through
 * `flags << 0` style plumbing still reach their defining expression.
 */
ExprRef
bit_of(const ExprRef &e, unsigned i)
{
    ExprRef r = ir::E::extract(e, i, 1);
    if (r->kind() != ir::ExprKind::Cast ||
        r->cast() != ir::CastKind::Extract || r->width() != 1)
        return r;
    const ExprRef inner = r->a();
    const unsigned k = r->extract_lo();
    if (inner->kind() == ir::ExprKind::BinOp && inner->b()->is_const()) {
        const unsigned c =
            static_cast<unsigned>(std::min<u64>(inner->b()->value(), 64));
        if (inner->binop() == ir::BinOpKind::Shl) {
            if (k < c)
                return ir::E::constant(1, 0);
            return bit_of(inner->a(), k - c);
        }
        if (inner->binop() == ir::BinOpKind::LShr) {
            if (k + c >= inner->a()->width())
                return ir::E::constant(1, 0);
            return bit_of(inner->a(), k + c);
        }
    }
    return r;
}

enum class BitClass : u8 { Unchanged, Written, Cond };

BitClass
classify_bit(const Engine &eng, const ExprRef &bit, const ExprRef &init_bit)
{
    if (Expr::equal(bit, init_bit))
        return BitClass::Unchanged;
    if (bit->kind() == ir::ExprKind::Ite) {
        const BitClass t = classify_bit(eng, bit->b(), init_bit);
        const BitClass f = classify_bit(eng, bit->c(), init_bit);
        return t == f ? t : BitClass::Cond;
    }
    // Variables that may carry the untouched initial value (widened
    // slots, clobber reads, undefined temps) make the bit only
    // conditionally written. Initial-state variables and symbolic-load
    // results are fine: `cf := !cf_in` writes CF on every execution,
    // and so does storing a flag computed from a memory operand.
    std::vector<ExprRef> vars;
    Expr::collect_vars(bit, vars);
    for (const auto &v : vars)
        if (eng.may_keep_initial(v->var_id()))
            return BitClass::Cond;
    return BitClass::Written;
}

} // namespace

const char *
prune_mode_name(PruneMode mode)
{
    switch (mode) {
      case PruneMode::Off:
        return "off";
      case PruneMode::On:
        return "on";
      case PruneMode::CrossCheck:
        return "crosscheck";
    }
    return "?";
}

ProgramFacts
analyze_program(const ir::Program &program, const Cfg &cfg,
                const DataflowConfig &config)
{
    Engine engine(program, cfg, config);
    return engine.run();
}

FlagSummary
flag_write_summary(const ir::Program &program, u32 eflags_addr,
                   u32 ok_halt_code)
{
    const Cfg cfg = Cfg::build(program);
    const DataflowConfig config; // Pure mode: fresh per-byte inputs.
    Engine engine(program, cfg, config);
    const ProgramFacts facts = engine.run();
    FlagSummary fs;
    if (!facts.analyzed) {
        fs.capped = true;
        return fs;
    }
    fs.analyzed = true;
    u32 must = kStatusFlagsMask;
    for (const ExitState &x : engine.exits()) {
        // Non-constant exit codes are conservatively treated as
        // completing: their flag effects widen may and narrow must.
        if (x.code->is_const() && x.code->value() != ok_halt_code)
            continue;
        ++fs.ok_exits;
        ExprRef dword = engine.exit_byte(x, eflags_addr);
        for (unsigned k = 1; k < 4; ++k)
            dword = ir::E::concat(engine.exit_byte(x, eflags_addr + k),
                                  dword);
        for (unsigned i = 0; i < 32; ++i) {
            if (!(kStatusFlagsMask & (1u << i)))
                continue;
            const ExprRef bit = bit_of(dword, i);
            const ExprRef init_bit =
                ir::E::extract(engine.initial_byte(eflags_addr + i / 8),
                               i % 8, 1);
            switch (classify_bit(engine, bit, init_bit)) {
              case BitClass::Unchanged:
                must &= ~(1u << i);
                break;
              case BitClass::Written:
                fs.may |= 1u << i;
                break;
              case BitClass::Cond:
                fs.may |= 1u << i;
                must &= ~(1u << i);
                break;
            }
        }
    }
    if (fs.ok_exits == 0) {
        fs.capped = true;
        fs.may = 0;
        fs.must = 0;
        return fs;
    }
    fs.must = must & fs.may;
    return fs;
}

} // namespace pokeemu::analysis
