/**
 * @file
 * Diagnostic lint passes over a verified IR program, and the standard
 * pipeline combining them with the verifier.
 *
 * Each pass reads the program through a shared Cfg and appends
 * findings to a Report. Lints never produce error severity: they flag
 * constructs that execute correctly but waste exploration work or
 * indicate generator mistakes (unreachable code, values computed and
 * dropped, path constraints added later than necessary).
 */
#ifndef POKEEMU_ANALYSIS_PASSES_H
#define POKEEMU_ANALYSIS_PASSES_H

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostic.h"
#include "analysis/pathstructure.h"
#include "analysis/verifier.h"

namespace pokeemu::analysis {

/**
 * Is a finding of @p pass suppressed at @p stmt_index? True when the
 * statement's own note, or the note of any Comment statement directly
 * above it, contains "lint: allow-<pass>". Generator code uses the
 * marker to acknowledge a diagnostic that is intentional (e.g. a
 * semantics program whose branch is constant by construction).
 */
bool lint_allowed(const ir::Program &program, u32 stmt_index,
                  const std::string &pass);

/**
 * Flag statements no path from the entry can execute. The guard Halt
 * that IrBuilder::finish() appends after a trailing jump is reported
 * as a note; any other unreachable region is a warning.
 */
void pass_unreachable(const ir::Program &program, const Cfg &cfg,
                      Report &report);

/**
 * Backward-liveness pass: flag Assigns whose value no later statement
 * can read (warning), Loads whose value is never read (note — a load
 * still concretizes its address, so it is not semantically dead), and
 * constant-address Stores every one of whose bytes is overwritten on
 * every path before any possible read (warning). Store liveness is a
 * cross-block backward byte-liveness fixpoint: Halt observes the whole
 * state (all bytes live), a constant-address Load reads exactly its
 * bytes, a symbolic Load may read anything, a constant-address Store
 * kills its bytes, and a symbolic Store neither reads nor reliably
 * overwrites.
 */
void pass_dead_code(const ir::Program &program, const Cfg &cfg,
                    Report &report);

/**
 * Flag CJmps whose condition the dataflow facts decide (warning): one
 * successor edge can never be taken, so the branch wastes a decision-
 * tree node per path that reaches it. Constant conditions the
 * canonicalizer already folded never reach the IR; this catches the
 * ones only the domain analysis sees.
 */
void pass_const_branch(const ir::Program &program, const Cfg &cfg,
                       const ProgramFacts &facts, Report &report);

/**
 * Flag non-constant Assumes the dataflow facts decide: AlwaysTrue is
 * redundant (note — the facts already imply it on every path);
 * AlwaysFalse makes every path through the statement infeasible
 * (warning).
 */
void pass_redundant_assume(const ir::Program &program, const Cfg &cfg,
                           const ProgramFacts &facts, Report &report);

/**
 * Flag blocks the CFG reaches but the dataflow facts prove dead —
 * a decided branch or statically-false assume guards every path into
 * them (warning). Complements pass_unreachable, which only sees graph
 * connectivity.
 */
void pass_dataflow_unreachable(const ir::Program &program,
                               const Cfg &cfg,
                               const ProgramFacts &facts,
                               Report &report);

/**
 * Assume-placement lints: an Assume after a Load/Store in its block
 * constrains the path later than necessary (note); an Assume of the
 * same condition the controlling branch just decided is redundant
 * (note); a constant-true Assume is vacuous (note) and a
 * constant-false one makes every path through it infeasible
 * (warning).
 */
void pass_assume_placement(const ir::Program &program, const Cfg &cfg,
                           Report &report);

/**
 * Degenerate-branch lints built on the dominator/post-dominator trees
 * (warning): a CJmp whose two targets enter the same block splits a
 * decision-tree node to go nowhere different, and a CJmp immediately
 * post-dominated by its own join with no intervening side effects
 * (arms that are empty or only Comment/Jmp) distinguishes paths no
 * later statement can tell apart. Both double exploration work per
 * path that reaches them; `lint: allow-same-target-cjmp` marks the
 * intentional ones.
 */
void pass_same_target_cjmp(const ir::Program &program, const Cfg &cfg,
                           const PathStructure &structure,
                           Report &report);

/**
 * The standard pipeline: Verifier::check, then — only when the
 * program verified clean of errors, since the lints assume a
 * well-formed CFG — every lint pass above. The dataflow-backed passes
 * run over analyze_program with a default config (pure mode, no
 * preconditions) and are skipped when the analysis bails.
 */
Report run_pipeline(const ir::Program &program);

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_PASSES_H
