/**
 * @file
 * Diagnostic lint passes over a verified IR program, and the standard
 * pipeline combining them with the verifier.
 *
 * Each pass reads the program through a shared Cfg and appends
 * findings to a Report. Lints never produce error severity: they flag
 * constructs that execute correctly but waste exploration work or
 * indicate generator mistakes (unreachable code, values computed and
 * dropped, path constraints added later than necessary).
 */
#ifndef POKEEMU_ANALYSIS_PASSES_H
#define POKEEMU_ANALYSIS_PASSES_H

#include "analysis/cfg.h"
#include "analysis/diagnostic.h"
#include "analysis/verifier.h"

namespace pokeemu::analysis {

/**
 * Flag statements no path from the entry can execute. The guard Halt
 * that IrBuilder::finish() appends after a trailing jump is reported
 * as a note; any other unreachable region is a warning.
 */
void pass_unreachable(const ir::Program &program, const Cfg &cfg,
                      Report &report);

/**
 * Backward-liveness pass: flag Assigns whose value no later statement
 * can read (warning), Loads whose value is never read (note — a load
 * still concretizes its address, so it is not semantically dead), and
 * Stores fully overwritten at the same constant address before any
 * intervening read (warning).
 */
void pass_dead_code(const ir::Program &program, const Cfg &cfg,
                    Report &report);

/**
 * Assume-placement lints: an Assume after a Load/Store in its block
 * constrains the path later than necessary (note); an Assume of the
 * same condition the controlling branch just decided is redundant
 * (note); a constant-true Assume is vacuous (note) and a
 * constant-false one makes every path through it infeasible
 * (warning).
 */
void pass_assume_placement(const ir::Program &program, const Cfg &cfg,
                           Report &report);

/**
 * The standard pipeline: Verifier::check, then — only when the
 * program verified clean of errors, since the lints assume a
 * well-formed CFG — every lint pass above.
 */
Report run_pipeline(const ir::Program &program);

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_PASSES_H
