#include "analysis/optimize.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow.h"
#include "analysis/liveness.h"
#include "analysis/walk.h"
#include "ir/expr.h"

namespace pokeemu::analysis {

using ir::ExprKind;
using ir::ExprRef;
using ir::StmtKind;

const char *
opt_mode_name(OptMode mode)
{
    switch (mode) {
      case OptMode::Off: return "off";
      case OptMode::On: return "on";
      case OptMode::Validated: return "validated";
    }
    return "?";
}

namespace {

u64
count_exec(const ir::Program &p)
{
    u64 n = 0;
    for (const ir::Stmt &s : p.stmts)
        n += s.kind != StmtKind::Comment ? 1 : 0;
    return n;
}

bool
is_leaf(const ExprRef &x)
{
    return x->kind() == ExprKind::Const ||
           x->kind() == ExprKind::Var || x->kind() == ExprKind::Temp;
}

/**
 * Delete the statements flagged in @p remove, remapping every label to
 * the first surviving statement at or after its old position. Labels
 * that pointed into a deleted tail clamp to the last statement; only
 * labels nothing reachable targets can end up there. Returns whether
 * anything was deleted.
 */
bool
compact(ir::Program &p, const std::vector<bool> &remove)
{
    const u32 n = static_cast<u32>(p.stmts.size());
    std::vector<u32> new_index(n + 1, 0);
    u32 kept = 0;
    for (u32 i = 0; i < n; ++i) {
        new_index[i] = kept;
        kept += remove[i] ? 0 : 1;
    }
    new_index[n] = kept;
    if (kept == n)
        return false;
    for (u32 &pos : p.label_pos)
        pos = std::min(new_index[pos], kept != 0 ? kept - 1 : 0);
    std::vector<ir::Stmt> stmts;
    stmts.reserve(kept);
    for (u32 i = 0; i < n; ++i) {
        if (!remove[i])
            stmts.push_back(std::move(p.stmts[i]));
    }
    p.stmts = std::move(stmts);
    return true;
}

/**
 * Fold statically-decided control flow and strengthen provably-
 * constant Load/Store addresses. Decisions come from the pure-mode
 * dataflow engine, so each rewrite holds for every initial state.
 */
bool
fold_branches(ir::Program &p, OptStats &stats)
{
    const Cfg cfg = Cfg::build(p);
    const ProgramFacts facts = analyze_program(p, cfg);
    bool changed = false;
    std::vector<bool> remove(p.stmts.size(), false);
    for (u32 i = 0; i < p.stmts.size(); ++i) {
        ir::Stmt &s = p.stmts[i];
        if (s.kind == StmtKind::CJmp) {
            std::optional<bool> dir;
            if (s.expr->is_const())
                dir = s.expr->value() != 0;
            else if (facts.decision(i) == Decision::AlwaysTrue)
                dir = true;
            else if (facts.decision(i) == Decision::AlwaysFalse)
                dir = false;
            if (dir.has_value()) {
                s.kind = StmtKind::Jmp;
                s.target_true = *dir ? s.target_true : s.target_false;
                s.target_false = 0;
                s.expr = nullptr;
                ++stats.branches_folded;
                changed = true;
            }
        } else if (s.kind == StmtKind::Assume) {
            // Constant/decided-true assumes can never fail; decided-
            // false ones carry the fault behavior and must stay.
            if ((s.expr->is_const() && s.expr->value() != 0) ||
                facts.decision(i) == Decision::AlwaysTrue) {
                remove[i] = true;
                ++stats.assumes_dropped;
                changed = true;
            }
        } else if ((s.kind == StmtKind::Load ||
                    s.kind == StmtKind::Store) &&
                   facts.analyzed && i < facts.const_addr.size() &&
                   facts.const_addr[i].has_value() &&
                   !s.addr->is_const()) {
            s.addr = ir::E::constant(32, *facts.const_addr[i]);
            ++stats.addrs_strengthened;
            changed = true;
        }
    }
    changed = compact(p, remove) || changed;
    return changed;
}

bool
remove_unreachable(ir::Program &p, OptStats &stats)
{
    const Cfg cfg = Cfg::build(p);
    std::vector<bool> remove(p.stmts.size(), false);
    bool changed = false;
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        if (cfg.reachable(b))
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            remove[i] = true;
            ++stats.unreachable_stmts;
            changed = true;
        }
    }
    compact(p, remove);
    return changed;
}

/**
 * Copy propagation / forward substitution. Temps are statically
 * single-assignment, but a definition inside a loop is dynamically
 * reassigned every iteration, so eligibility splits on the defining
 * block's cycle taint:
 *
 *  - non-tainted def: the block executes at most once per run, every
 *    use is dominated by the def, and (transitively) every temp the
 *    rhs mentions is also defined in a non-tainted block — the rhs
 *    evaluates to the same value at any use site, so it substitutes
 *    anywhere. Leaf rhs always; non-leaf rhs only when the temp has a
 *    single use outside any loop (re-evaluating a big expression every
 *    iteration would pessimize replay).
 *  - tainted def: substituted only within the defining block, with a
 *    forward scan that kills a pending replacement when any temp it
 *    mentions is redefined (the use might otherwise read the next
 *    iteration's value).
 */
bool
propagate_copies(ir::Program &p, OptStats &stats)
{
    const Cfg cfg = Cfg::build(p);
    const ProgramFacts facts = analyze_program(p, cfg);
    if (!facts.analyzed)
        return false;

    const u32 num_temps = p.num_temps();
    const u32 n = static_cast<u32>(p.stmts.size());
    std::vector<s64> def_site(num_temps, -1); // -2 = multiple defs.
    std::vector<u64> use_count(num_temps, 0);
    std::vector<u32> use_site(num_temps, 0);
    for (u32 i = 0; i < n; ++i) {
        const ir::Stmt &s = p.stmts[i];
        const s64 def = stmt_def(s);
        if (def >= 0 && def < static_cast<s64>(num_temps)) {
            const auto t = static_cast<u32>(def);
            def_site[t] = def_site[t] == -1 ? i : -2;
        }
        for_each_stmt_use(s, [&](u32 t, unsigned) {
            if (t < num_temps) {
                ++use_count[t];
                use_site[t] = i;
            }
        });
    }
    const auto tainted = [&](u32 stmt_index) {
        const BlockId b = cfg.block_of(stmt_index);
        return b < facts.cycle_tainted.size() &&
               facts.cycle_tainted[b];
    };
    const auto eligible_rhs = [&](u32 t, const ir::Stmt &s) {
        if (s.kind != StmtKind::Assign)
            return false;
        bool self = false;
        for_each_temp_use(s.expr, [&](u32 u, unsigned) {
            self = self || u == t;
        });
        if (self)
            return false;
        return is_leaf(s.expr) || use_count[t] == 1;
    };

    u64 replaced = 0;
    std::unordered_map<u32, ExprRef> global;
    for (u32 t = 0; t < num_temps; ++t) {
        if (def_site[t] < 0 || use_count[t] == 0)
            continue;
        const auto i = static_cast<u32>(def_site[t]);
        const ir::Stmt &s = p.stmts[i];
        if (!eligible_rhs(t, s) || tainted(i))
            continue;
        if (!is_leaf(s.expr) && tainted(use_site[t]))
            continue; // Would re-evaluate the rhs every iteration.
        global.emplace(t, s.expr);
    }
    if (!global.empty()) {
        const auto lookup = [&](const ir::Expr &e) -> ExprRef {
            if (e.kind() != ExprKind::Temp)
                return nullptr;
            const auto it = global.find(e.temp_id());
            if (it == global.end())
                return nullptr;
            ++replaced;
            return it->second;
        };
        for (u32 i = 0; i < n; ++i) {
            ir::Stmt &s = p.stmts[i];
            // Skip the defining statement itself: dead-code removal
            // deletes it once the uses are gone.
            const s64 def = stmt_def(s);
            if (def >= 0 && global.count(static_cast<u32>(def)) != 0)
                continue;
            if (s.expr)
                s.expr = ir::substitute(s.expr, lookup);
            if (s.addr)
                s.addr = ir::substitute(s.addr, lookup);
        }
    }

    // Local pass over cycle-tainted blocks.
    for (const BlockId b : cfg.reverse_postorder()) {
        if (b >= facts.cycle_tainted.size() || !facts.cycle_tainted[b])
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        std::unordered_map<u32, ExprRef> local;
        const auto lookup = [&](const ir::Expr &e) -> ExprRef {
            if (e.kind() != ExprKind::Temp)
                return nullptr;
            const auto it = local.find(e.temp_id());
            if (it == local.end())
                return nullptr;
            ++replaced;
            return it->second;
        };
        for (u32 i = block.first; i < block.end; ++i) {
            ir::Stmt &s = p.stmts[i];
            if (s.expr)
                s.expr = ir::substitute(s.expr, lookup);
            if (s.addr)
                s.addr = ir::substitute(s.addr, lookup);
            const s64 def = stmt_def(s);
            if (def < 0)
                continue;
            const auto t = static_cast<u32>(def);
            local.erase(t);
            for (auto it = local.begin(); it != local.end();) {
                bool mentions = false;
                for_each_temp_use(it->second, [&](u32 u, unsigned) {
                    mentions = mentions || u == t;
                });
                it = mentions ? local.erase(it) : ++it;
            }
            if (def_site[t] == static_cast<s64>(i) &&
                eligible_rhs(t, s)) {
                local.emplace(t, s.expr);
            }
        }
    }

    stats.copies_propagated += replaced;
    return replaced != 0;
}

bool
remove_dead(ir::Program &p, OptStats &stats)
{
    const Cfg cfg = Cfg::build(p);
    const LivenessResult live = compute_liveness(p, cfg);
    std::vector<bool> remove(p.stmts.size(), false);
    bool changed = false;
    for (u32 i = 0; i < p.stmts.size(); ++i) {
        const ir::Stmt &s = p.stmts[i];
        if (s.kind == StmtKind::Comment) {
            remove[i] = true;
            changed = true;
        } else if (s.kind == StmtKind::Assign && !live.def_live[i]) {
            remove[i] = true;
            ++stats.dead_assigns;
            changed = true;
        } else if (s.kind == StmtKind::Load && !live.def_live[i] &&
                   s.addr->is_const()) {
            // A symbolic-address load concretizes its address, which
            // exploration observes; only literal addresses are free.
            remove[i] = true;
            ++stats.dead_loads;
            changed = true;
        } else if (s.kind == StmtKind::Store && live.store_dead[i]) {
            remove[i] = true;
            ++stats.dead_stores;
            changed = true;
        }
    }
    compact(p, remove);
    return changed;
}

/**
 * Retarget jumps through chains of trivial Jmp statements, rewrite a
 * CJmp whose two targets resolve to the same place into a Jmp, and
 * drop jumps to the lexically next statement.
 */
bool
thread_jumps(ir::Program &p, OptStats &stats)
{
    const u32 n = static_cast<u32>(p.stmts.size());
    const u32 num_labels = p.num_labels();
    std::vector<u32> final_label(num_labels);
    for (u32 l = 0; l < num_labels; ++l) {
        u32 cur = l;
        std::unordered_set<u32> seen;
        while (seen.insert(cur).second) {
            const ir::Stmt &s = p.stmts[p.label_pos[cur]];
            if (s.kind != StmtKind::Jmp || s.target_true == cur)
                break;
            cur = s.target_true;
        }
        final_label[l] = cur;
    }
    bool changed = false;
    std::vector<bool> remove(n, false);
    for (u32 i = 0; i < n; ++i) {
        ir::Stmt &s = p.stmts[i];
        if (s.kind == StmtKind::CJmp) {
            const u32 t = final_label[s.target_true];
            const u32 f = final_label[s.target_false];
            if (t != s.target_true || f != s.target_false) {
                s.target_true = t;
                s.target_false = f;
                ++stats.jumps_threaded;
                changed = true;
            }
            if (p.label_pos[t] == p.label_pos[f]) {
                // Both arms land in the same place; the condition is
                // pure, so the branch decides nothing.
                s.kind = StmtKind::Jmp;
                s.target_false = 0;
                s.expr = nullptr;
                ++stats.branches_folded;
                changed = true;
            }
        } else if (s.kind == StmtKind::Jmp) {
            const u32 t = final_label[s.target_true];
            if (t != s.target_true) {
                s.target_true = t;
                ++stats.jumps_threaded;
                changed = true;
            }
            if (p.label_pos[s.target_true] == i + 1) {
                remove[i] = true;
                ++stats.jumps_threaded;
                changed = true;
            }
        }
    }
    compact(p, remove);
    return changed;
}

} // namespace

OptResult
optimize_program(const ir::Program &program, const OptConfig &config)
{
    OptResult r;
    r.stats.stmts_before = program.stmts.size();
    r.stats.exec_before = count_exec(program);
    r.program = program;
    for (unsigned round = 0; round < config.max_rounds; ++round) {
        ++r.stats.rounds;
        bool changed = false;
        changed |= fold_branches(r.program, r.stats);
        changed |= remove_unreachable(r.program, r.stats);
        changed |= propagate_copies(r.program, r.stats);
        changed |= remove_dead(r.program, r.stats);
        changed |= thread_jumps(r.program, r.stats);
        if (!changed)
            break;
    }
    r.stats.stmts_after = r.program.stmts.size();
    r.stats.exec_after = count_exec(r.program);
    return r;
}

} // namespace pokeemu::analysis
