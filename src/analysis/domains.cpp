#include "analysis/domains.h"

#include <algorithm>

namespace pokeemu::analysis {

using ir::BinOpKind;
using ir::CastKind;
using ir::Expr;
using ir::ExprKind;
using ir::ExprRef;
using ir::UnOpKind;

namespace {

u64
width_mask(unsigned w)
{
    return w >= 64 ? ~u64{0} : (u64{1} << w) - 1;
}

/** Number of contiguous known bits starting at bit 0. */
unsigned
trailing_known(const Fact &f)
{
    const u64 known = f.zeros | f.ones;
    unsigned n = 0;
    while (n < f.width && ((known >> n) & 1))
        ++n;
    return n;
}

/** Index of the highest set bit (value != 0). */
unsigned
msb_index(u64 value)
{
    unsigned i = 63;
    while (!((value >> i) & 1))
        --i;
    return i;
}

/** Signed interpretation bounds; nullopt when the unsigned interval
 *  straddles the sign boundary (both signs possible). */
std::optional<std::pair<s64, s64>>
signed_range(const Fact &f)
{
    if (f.width >= 64) {
        // Only constants are precise enough to bother with here.
        if (f.is_constant()) {
            const s64 v = static_cast<s64>(f.lo);
            return std::make_pair(v, v);
        }
        return std::nullopt;
    }
    const u64 half = u64{1} << (f.width - 1);
    if (f.hi < half)
        return std::make_pair(static_cast<s64>(f.lo),
                              static_cast<s64>(f.hi));
    if (f.lo >= half) {
        const u64 bias = u64{1} << f.width;
        return std::make_pair(static_cast<s64>(f.lo) -
                                  static_cast<s64>(bias),
                              static_cast<s64>(f.hi) -
                                  static_cast<s64>(bias));
    }
    return std::nullopt;
}

Fact
bool_fact(bool b)
{
    return Fact::constant(1, b ? 1 : 0);
}

} // namespace

Fact
Fact::top(unsigned w)
{
    Fact f;
    f.width = w;
    f.lo = 0;
    f.hi = width_mask(w);
    return f;
}

Fact
Fact::constant(unsigned w, u64 value)
{
    Fact f;
    f.width = w;
    const u64 v = value & width_mask(w);
    f.ones = v;
    f.zeros = ~v & width_mask(w);
    f.lo = f.hi = v;
    return f;
}

Fact
Fact::known(unsigned w, u64 zeros, u64 ones)
{
    Fact f;
    f.width = w;
    f.zeros = zeros & width_mask(w);
    f.ones = ones & width_mask(w);
    f.lo = 0;
    f.hi = width_mask(w);
    return f.normalize();
}

Fact
Fact::range(unsigned w, u64 lo, u64 hi)
{
    Fact f;
    f.width = w;
    f.lo = lo & width_mask(w);
    f.hi = hi & width_mask(w);
    return f.normalize();
}

Fact
Fact::bot(unsigned w)
{
    Fact f;
    f.width = w;
    f.bottom = true;
    f.zeros = f.ones = width_mask(w);
    f.lo = 1;
    f.hi = 0;
    return f;
}

std::optional<bool>
Fact::decide() const
{
    if (bottom)
        return std::nullopt; // Unreachable value: leave undecided.
    if (width != 1)
        return std::nullopt;
    if (ones & 1)
        return true;
    if (zeros & 1)
        return false;
    return std::nullopt;
}

bool
Fact::contains(u64 value) const
{
    if (bottom)
        return false;
    const u64 v = value & mask();
    if ((v & zeros) != 0)
        return false;
    if ((~v & ones) != 0)
        return false;
    return v >= lo && v <= hi;
}

bool
Fact::is_top() const
{
    return !bottom && zeros == 0 && ones == 0 && lo == 0 &&
        hi == mask();
}

Fact
Fact::join(const Fact &other) const
{
    assert(width == other.width);
    if (bottom)
        return other;
    if (other.bottom)
        return *this;
    Fact f;
    f.width = width;
    f.zeros = zeros & other.zeros;
    f.ones = ones & other.ones;
    f.lo = std::min(lo, other.lo);
    f.hi = std::max(hi, other.hi);
    return f.normalize();
}

Fact
Fact::meet(const Fact &other) const
{
    assert(width == other.width);
    if (bottom || other.bottom)
        return bot(width);
    Fact f;
    f.width = width;
    f.zeros = zeros | other.zeros;
    f.ones = ones | other.ones;
    f.lo = std::max(lo, other.lo);
    f.hi = std::min(hi, other.hi);
    return f.normalize();
}

Fact
Fact::normalize() const
{
    if (bottom)
        return *this;
    Fact f = *this;
    const u64 m = f.mask();
    f.zeros &= m;
    f.ones &= m;
    if ((f.zeros & f.ones) != 0 || f.lo > f.hi)
        return bot(width);
    // Known bits bound the interval: the smallest member has every
    // unknown bit 0, the largest every unknown bit 1.
    const u64 kmin = f.ones;
    const u64 kmax = m & ~f.zeros;
    f.lo = std::max(f.lo, kmin);
    f.hi = std::min(f.hi, kmax);
    if (f.lo > f.hi)
        return bot(width);
    // Interval bounds pin the shared leading bits of lo and hi.
    const u64 diff = f.lo ^ f.hi;
    if (diff == 0) {
        f.ones = f.lo;
        f.zeros = m & ~f.lo;
    } else {
        const unsigned split = msb_index(diff);
        const u64 lead =
            split + 1 >= 64 ? 0 : (m & ~((u64{1} << (split + 1)) - 1));
        f.ones |= f.lo & lead;
        f.zeros |= ~f.lo & lead;
    }
    if ((f.zeros & f.ones) != 0)
        return bot(width);
    return f;
}

bool
Fact::operator==(const Fact &other) const
{
    return width == other.width && bottom == other.bottom &&
        zeros == other.zeros && ones == other.ones && lo == other.lo &&
        hi == other.hi;
}

std::string
Fact::to_string() const
{
    if (bottom)
        return "bot/" + std::to_string(width);
    std::string bits;
    for (unsigned i = width; i-- > 0;) {
        if ((ones >> i) & 1)
            bits += '1';
        else if ((zeros >> i) & 1)
            bits += '0';
        else
            bits += 'x';
    }
    return bits + " [" + std::to_string(lo) + "," + std::to_string(hi) +
        "]";
}

Fact
Fact::binop(BinOpKind op, const Fact &a, const Fact &b)
{
    const unsigned w =
        op == BinOpKind::Concat ? a.width + b.width
        : ir::is_comparison(op) ? 1
                                : a.width;
    if (a.bottom || b.bottom)
        return bot(w);
    const u64 m = width_mask(w);

    // Two constants always fold exactly (matches ir::E constant
    // folding, so facts never lag behind the simplifier).
    // Everything below handles the partially-known cases.
    switch (op) {
      case BinOpKind::Add: {
        Fact f = top(w);
        const u64 sum_hi = a.hi + b.hi;
        if (sum_hi >= a.hi && sum_hi <= m) {
            f.lo = a.lo + b.lo;
            f.hi = sum_hi;
        }
        // The low t bits of a sum depend only on the low t bits of
        // the operands (carry-in to bit 0 is zero).
        const unsigned t =
            std::min(trailing_known(a), trailing_known(b));
        if (t > 0) {
            const u64 tm = width_mask(std::min(t, 64u));
            const u64 low = (a.ones + b.ones) & tm;
            f.ones |= low;
            f.zeros |= ~low & tm;
        }
        return f.normalize();
      }
      case BinOpKind::Sub: {
        Fact f = top(w);
        if (a.lo >= b.hi) {
            f.lo = a.lo - b.hi;
            f.hi = a.hi - b.lo;
        }
        const unsigned t =
            std::min(trailing_known(a), trailing_known(b));
        if (t > 0) {
            const u64 tm = width_mask(std::min(t, 64u));
            const u64 low = (a.ones - b.ones) & tm;
            f.ones |= low;
            f.zeros |= ~low & tm;
        }
        return f.normalize();
      }
      case BinOpKind::Mul: {
        Fact f = top(w);
        if (b.hi != 0 && a.hi <= m / b.hi) {
            f.lo = a.lo * b.lo;
            f.hi = a.hi * b.hi;
        } else if (b.hi == 0) {
            return constant(w, 0);
        }
        const unsigned t =
            std::min(trailing_known(a), trailing_known(b));
        if (t > 0) {
            const u64 tm = width_mask(std::min(t, 64u));
            const u64 low = (a.ones * b.ones) & tm;
            f.ones |= low;
            f.zeros |= ~low & tm;
        }
        return f.normalize();
      }
      case BinOpKind::UDiv:
        // Divisor interval excluding zero gives monotone bounds
        // (the evaluator defines x/0; treat it as unbounded).
        if (b.lo > 0)
            return range(w, a.lo / b.hi, a.hi / b.lo);
        return top(w);
      case BinOpKind::URem:
        if (b.lo > 0)
            return range(w, 0, b.hi - 1);
        return top(w);
      case BinOpKind::SDiv:
      case BinOpKind::SRem:
        return top(w);
      case BinOpKind::And: {
        Fact f;
        f.width = w;
        f.zeros = a.zeros | b.zeros;
        f.ones = a.ones & b.ones;
        f.lo = 0;
        f.hi = std::min(a.hi, b.hi);
        return f.normalize();
      }
      case BinOpKind::Or: {
        Fact f;
        f.width = w;
        f.zeros = a.zeros & b.zeros;
        f.ones = a.ones | b.ones;
        f.lo = std::max(a.lo, b.lo);
        f.hi = m;
        return f.normalize();
      }
      case BinOpKind::Xor: {
        Fact f = top(w);
        const u64 known =
            (a.zeros | a.ones) & (b.zeros | b.ones);
        const u64 bits = (a.ones ^ b.ones) & known;
        f.ones = bits;
        f.zeros = known & ~bits;
        return f.normalize();
      }
      case BinOpKind::Shl: {
        if (b.is_constant()) {
            const u64 c = b.value();
            if (c >= w)
                return constant(w, 0);
            Fact f = top(w);
            f.zeros = ((a.zeros << c) | width_mask(static_cast<unsigned>(c))) & m;
            f.ones = (a.ones << c) & m;
            if (a.hi <= (m >> c)) {
                f.lo = a.lo << c;
                f.hi = a.hi << c;
            }
            return f.normalize();
        }
        return top(w);
      }
      case BinOpKind::LShr: {
        if (b.is_constant()) {
            const u64 c = b.value();
            if (c >= w)
                return constant(w, 0);
            Fact f;
            f.width = w;
            f.zeros = (a.zeros >> c) | (m & ~(m >> c));
            f.ones = a.ones >> c;
            f.lo = a.lo >> c;
            f.hi = a.hi >> c;
            return f.normalize();
        }
        // Any shift only shrinks an unsigned value.
        return range(w, 0, a.hi);
      }
      case BinOpKind::AShr: {
        if (b.is_constant() && w < 64) {
            const u64 c = std::min<u64>(b.value(), w - 1);
            const u64 sign = u64{1} << (w - 1);
            if (a.zeros & sign) {
                Fact f;
                f.width = w;
                f.zeros = (a.zeros >> c) | (m & ~(m >> c));
                f.ones = a.ones >> c;
                f.lo = a.lo >> c;
                f.hi = a.hi >> c;
                return f.normalize();
            }
            if (a.ones & sign) {
                Fact f = top(w);
                const u64 fill = m & ~(m >> c);
                f.ones = (a.ones >> c) | fill;
                f.zeros = (a.zeros >> c) & ~fill;
                return f.normalize();
            }
        }
        return top(w);
      }
      case BinOpKind::Eq: {
        // Disjoint known bits or disjoint intervals refute equality.
        if ((a.ones & b.zeros) != 0 || (a.zeros & b.ones) != 0)
            return bool_fact(false);
        if (a.hi < b.lo || b.hi < a.lo)
            return bool_fact(false);
        if (a.is_constant() && b.is_constant())
            return bool_fact(a.value() == b.value());
        return top(1);
      }
      case BinOpKind::Ne: {
        const Fact e = binop(BinOpKind::Eq, a, b);
        if (auto d = e.decide())
            return bool_fact(!*d);
        return top(1);
      }
      case BinOpKind::ULt:
        if (a.hi < b.lo)
            return bool_fact(true);
        if (a.lo >= b.hi)
            return bool_fact(false);
        return top(1);
      case BinOpKind::ULe:
        if (a.hi <= b.lo)
            return bool_fact(true);
        if (a.lo > b.hi)
            return bool_fact(false);
        return top(1);
      case BinOpKind::SLt: {
        const auto sa = signed_range(a);
        const auto sb = signed_range(b);
        if (sa && sb) {
            if (sa->second < sb->first)
                return bool_fact(true);
            if (sa->first >= sb->second)
                return bool_fact(false);
        }
        return top(1);
      }
      case BinOpKind::SLe: {
        const auto sa = signed_range(a);
        const auto sb = signed_range(b);
        if (sa && sb) {
            if (sa->second <= sb->first)
                return bool_fact(true);
            if (sa->first > sb->second)
                return bool_fact(false);
        }
        return top(1);
      }
      case BinOpKind::Concat: {
        Fact f;
        f.width = w;
        f.zeros = (a.zeros << b.width) | b.zeros;
        f.ones = (a.ones << b.width) | b.ones;
        f.lo = (a.lo << b.width) + b.lo;
        f.hi = (a.hi << b.width) + b.hi;
        return f.normalize();
      }
    }
    return top(w);
}

Fact
Fact::unop(UnOpKind op, const Fact &a)
{
    if (a.bottom)
        return bot(a.width);
    switch (op) {
      case UnOpKind::Not: {
        Fact f;
        f.width = a.width;
        f.zeros = a.ones;
        f.ones = a.zeros;
        f.lo = ~a.hi & a.mask();
        f.hi = ~a.lo & a.mask();
        return f.normalize();
      }
      case UnOpKind::Neg:
        return binop(BinOpKind::Sub, constant(a.width, 0), a);
    }
    return top(a.width);
}

Fact
Fact::zext_to(const Fact &a, unsigned width)
{
    if (a.bottom)
        return bot(width);
    Fact f;
    f.width = width;
    f.zeros = a.zeros | (width_mask(width) & ~a.mask());
    f.ones = a.ones;
    f.lo = a.lo;
    f.hi = a.hi;
    return f.normalize();
}

Fact
Fact::sext_to(const Fact &a, unsigned width)
{
    if (a.bottom)
        return bot(width);
    const u64 sign = u64{1} << (a.width - 1);
    if (a.zeros & sign)
        return zext_to(a, width);
    const u64 fill = width_mask(width) & ~a.mask();
    if (a.ones & sign) {
        Fact f;
        f.width = width;
        f.zeros = a.zeros;
        f.ones = a.ones | fill;
        f.lo = a.lo | fill;
        f.hi = a.hi | fill;
        return f.normalize();
    }
    Fact f = top(width);
    f.zeros = a.zeros & ~sign;
    f.ones = a.ones & ~sign;
    return f.normalize();
}

Fact
Fact::extract_from(const Fact &a, unsigned lo, unsigned width)
{
    if (a.bottom)
        return bot(width);
    Fact f = top(width);
    const u64 m = width_mask(width);
    f.zeros = (a.zeros >> lo) & m;
    f.ones = (a.ones >> lo) & m;
    // (x >> lo) is monotone; the truncation keeps the bounds only
    // when the shifted range fits the narrower width.
    const u64 shifted_hi = a.hi >> lo;
    if (shifted_hi <= m) {
        f.lo = a.lo >> lo;
        f.hi = shifted_hi;
    }
    return f.normalize();
}

Fact
Fact::ite(const Fact &cond, const Fact &t, const Fact &f)
{
    if (auto d = cond.decide())
        return *d ? t : f;
    return t.join(f);
}

void
FactEnv::refine_var(u32 id, const Fact &fact)
{
    auto it = vars_.find(id);
    if (it == vars_.end()) {
        vars_.emplace(id, fact.normalize());
    } else {
        it->second = it->second.meet(fact);
    }
    // Var facts feed eval(); installed facts invalidate prior memos.
    cache_.clear();
    pinned_.clear();
}

Fact
FactEnv::var_fact(u32 id, unsigned width) const
{
    auto it = vars_.find(id);
    if (it != vars_.end() && it->second.width == width)
        return it->second;
    return Fact::top(width);
}

void
FactEnv::assume(const ir::ExprRef &cond)
{
    if (!cond || cond->width() != 1)
        return;
    if (cond->kind() == ExprKind::BinOp) {
        const BinOpKind op = cond->binop();
        // Conjunctions distribute (1-bit And is logical-and).
        if (op == BinOpKind::And) {
            assume(cond->a());
            assume(cond->b());
            return;
        }
        const ExprRef &a = cond->a();
        const ExprRef &b = cond->b();
        if (op == BinOpKind::Eq) {
            if (b->is_const())
                assume_eq(a, b->value());
            else if (a->is_const())
                assume_eq(b, a->value());
            return;
        }
        // Unsigned bounds against a constant refine the interval.
        if ((op == BinOpKind::ULt || op == BinOpKind::ULe) &&
            a->is_var() && b->is_const()) {
            const u64 c = b->value();
            if (op == BinOpKind::ULt && c == 0)
                return;
            const u64 hi = op == BinOpKind::ULt ? c - 1 : c;
            refine_var(a->var_id(),
                       Fact::range(a->width(), 0, hi));
            return;
        }
        if ((op == BinOpKind::ULt || op == BinOpKind::ULe) &&
            b->is_var() && a->is_const()) {
            const u64 c = a->value();
            const u64 lo = op == BinOpKind::ULt ? c + 1 : c;
            if (op == BinOpKind::ULt && c == width_mask(b->width()))
                return;
            refine_var(b->var_id(),
                       Fact::range(b->width(), lo,
                                   width_mask(b->width())));
            return;
        }
        return;
    }
    if (cond->is_var()) {
        refine_var(cond->var_id(), Fact::constant(1, 1));
        return;
    }
    if (cond->kind() == ExprKind::UnOp &&
        cond->unop() == UnOpKind::Not && cond->a()->is_var()) {
        refine_var(cond->a()->var_id(), Fact::constant(1, 0));
    }
}

void
FactEnv::assume_eq(const ir::ExprRef &lhs, u64 value)
{
    if (lhs->is_var()) {
        refine_var(lhs->var_id(), Fact::constant(lhs->width(), value));
        return;
    }
    if (lhs->kind() == ExprKind::Cast &&
        lhs->cast() == CastKind::Extract && lhs->a()->is_var()) {
        const unsigned pos = lhs->extract_lo();
        const u64 m = width_mask(lhs->width()) << pos;
        const u64 v = (value << pos) & m;
        refine_var(lhs->a()->var_id(),
                   Fact::known(lhs->a()->width(), m & ~v, v));
        return;
    }
    if (lhs->kind() == ExprKind::BinOp &&
        lhs->binop() == BinOpKind::And && lhs->a()->is_var() &&
        lhs->b()->is_const()) {
        const u64 m = lhs->b()->value();
        refine_var(lhs->a()->var_id(),
                   Fact::known(lhs->a()->width(), m & ~value,
                               m & value));
    }
}

Fact
FactEnv::eval(const ir::ExprRef &e)
{
    assert(e);
    if (e->is_const())
        return Fact::constant(e->width(), e->value());
    auto it = cache_.find(e.get());
    if (it != cache_.end())
        return it->second;

    Fact f = Fact::top(e->width());
    switch (e->kind()) {
      case ExprKind::Const:
        break; // Handled above.
      case ExprKind::Var:
        f = var_fact(e->var_id(), e->width());
        break;
      case ExprKind::Temp:
        // Facts are evaluated over resolved expressions; a stray temp
        // reference carries no information.
        break;
      case ExprKind::UnOp:
        f = Fact::unop(e->unop(), eval(e->a()));
        break;
      case ExprKind::BinOp:
        f = Fact::binop(e->binop(), eval(e->a()), eval(e->b()));
        break;
      case ExprKind::Cast: {
        const Fact a = eval(e->a());
        switch (e->cast()) {
          case CastKind::ZExt:
            f = Fact::zext_to(a, e->width());
            break;
          case CastKind::SExt:
            f = Fact::sext_to(a, e->width());
            break;
          case CastKind::Extract:
            f = Fact::extract_from(a, e->extract_lo(), e->width());
            break;
        }
        break;
      }
      case ExprKind::Ite:
        f = Fact::ite(eval(e->a()), eval(e->b()), eval(e->c()));
        break;
    }
    cache_.emplace(e.get(), f);
    pinned_.push_back(e);
    return f;
}

} // namespace pokeemu::analysis
