/**
 * @file
 * Small statement/expression traversal helpers shared by the verifier
 * and the lint passes: which temps a statement uses and defines, and a
 * DAG-safe expression walk.
 */
#ifndef POKEEMU_ANALYSIS_WALK_H
#define POKEEMU_ANALYSIS_WALK_H

#include <unordered_set>

#include "ir/stmt.h"

namespace pokeemu::analysis {

/**
 * Invoke @p fn(temp_id, width) for every Temp leaf of @p expr.
 * Shared subtrees are visited once per distinct node.
 */
template <typename Fn>
void
for_each_temp_use(const ir::ExprRef &expr, Fn &&fn)
{
    if (!expr)
        return;
    std::unordered_set<const ir::Expr *> seen;
    std::vector<const ir::Expr *> stack{expr.get()};
    while (!stack.empty()) {
        const ir::Expr *e = stack.back();
        stack.pop_back();
        if (!e || !seen.insert(e).second)
            continue;
        if (e->kind() == ir::ExprKind::Temp)
            fn(e->temp_id(), e->width());
        stack.push_back(e->a().get());
        stack.push_back(e->b().get());
        stack.push_back(e->c().get());
    }
}

/** Invoke @p fn(temp_id, width) for every temp @p stmt reads. */
template <typename Fn>
void
for_each_stmt_use(const ir::Stmt &stmt, Fn &&fn)
{
    // Every statement kind reads at most expr and addr; defs are
    // separate (stmt_def below).
    for_each_temp_use(stmt.expr, fn);
    for_each_temp_use(stmt.addr, fn);
}

/**
 * The temp @p stmt writes, or -1 when it writes none (only Assign and
 * Load define a temp).
 */
inline s64
stmt_def(const ir::Stmt &stmt)
{
    if (stmt.kind == ir::StmtKind::Assign ||
        stmt.kind == ir::StmtKind::Load) {
        return stmt.temp;
    }
    return -1;
}

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_WALK_H
