/**
 * @file
 * Control-flow graph over an ir::Program, shared by the verifier and
 * the lint passes.
 *
 * Statements are partitioned into maximal basic blocks (leaders: the
 * entry statement, every label target, every successor of a
 * terminator). Edges follow the statement semantics: CJmp has two
 * label successors, Jmp one, Halt none, and every other final
 * statement falls through to the next block. A block whose control can
 * run past the last statement of the program records `falls_off_end`
 * instead of a successor — the verifier turns that into a
 * missing-Halt error.
 *
 * Precondition: every label in the program is bound in range
 * (label_pos[l] < stmts.size()). The verifier establishes this before
 * building a Cfg; building one from a program with dangling labels is
 * undefined.
 */
#ifndef POKEEMU_ANALYSIS_CFG_H
#define POKEEMU_ANALYSIS_CFG_H

#include <vector>

#include "ir/stmt.h"

namespace pokeemu::analysis {

/** Block identifier; an index into Cfg::blocks(). */
using BlockId = u32;

/** A maximal straight-line run of statements. */
struct BasicBlock
{
    u32 first = 0;  ///< Index of the first statement.
    u32 end = 0;    ///< One past the last statement.
    std::vector<BlockId> succs;
    std::vector<BlockId> preds;
    /** Control can run past stmts.size() (no terminator, last block). */
    bool falls_off_end = false;

    u32 size() const { return end - first; }
    u32 last() const { return end - 1; }
};

/** See file comment. */
class Cfg
{
  public:
    /** Partition @p program into blocks and wire the edges. */
    static Cfg build(const ir::Program &program);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    u32 num_blocks() const { return static_cast<u32>(blocks_.size()); }

    /** Block containing statement @p stmt_index. */
    BlockId block_of(u32 stmt_index) const
    {
        return block_of_[stmt_index];
    }

    /** Entry block (contains statement 0); programs are non-empty. */
    BlockId entry() const { return 0; }

    /** True when @p block is reachable from the entry. */
    bool reachable(BlockId block) const { return reachable_[block]; }

    /**
     * Reachable blocks in reverse postorder (entry first; every block
     * before its successors except on back edges). The natural
     * iteration order for forward dataflow.
     */
    const std::vector<BlockId> &reverse_postorder() const
    {
        return rpo_;
    }

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<BlockId> block_of_; ///< stmt index -> block id.
    std::vector<bool> reachable_;
    std::vector<BlockId> rpo_;
};

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_CFG_H
