#include "analysis/passes.h"

#include "analysis/liveness.h"
#include "analysis/walk.h"
#include "ir/expr.h"

namespace pokeemu::analysis {

using ir::Expr;
using ir::ExprKind;
using ir::ExprRef;
using ir::StmtKind;

namespace {

/** True when @p x is logical-not of @p y (either nesting order). */
bool
is_negation_of(const ExprRef &x, const ExprRef &y)
{
    const auto not_of = [](const ExprRef &a, const ExprRef &b) {
        return a->kind() == ExprKind::UnOp &&
               a->unop() == ir::UnOpKind::Not &&
               Expr::equal(a->a(), b);
    };
    return not_of(x, y) || not_of(y, x);
}

} // namespace

bool
lint_allowed(const ir::Program &program, u32 stmt_index,
             const std::string &pass)
{
    const std::string marker = "lint: allow-" + pass;
    if (stmt_index >= program.stmts.size())
        return false;
    if (program.stmts[stmt_index].note.find(marker) !=
        std::string::npos) {
        return true;
    }
    // A run of Comment statements directly above carries the marker
    // for statements whose own note is meaningful (branch text etc.).
    for (u32 i = stmt_index; i-- > 0;) {
        const ir::Stmt &s = program.stmts[i];
        if (s.kind != StmtKind::Comment)
            break;
        if (s.note.find(marker) != std::string::npos)
            return true;
    }
    return false;
}

void
pass_unreachable(const ir::Program &program, const Cfg &cfg,
                 Report &report)
{
    constexpr const char *kPass = "unreachable";
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        if (cfg.reachable(b))
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        // IrBuilder::finish() appends a guard Halt when the program
        // does not already end in one; after a trailing jump that
        // guard is unreachable by construction. Expected, so a note.
        const bool is_guard_halt =
            block.end == program.stmts.size() && block.size() == 1 &&
            program.stmts[block.first].kind == StmtKind::Halt;
        const std::string range =
            block.size() == 1
                ? "statement " + std::to_string(block.first)
                : "statements " + std::to_string(block.first) + ".." +
                      std::to_string(block.end - 1);
        if (is_guard_halt) {
            report.note(block.first, kPass,
                        "unreachable builder guard Halt");
        } else {
            report.warning(block.first, kPass,
                           "unreachable: no path from the entry "
                           "executes " + range);
        }
    }
}

void
pass_dead_code(const ir::Program &program, const Cfg &cfg,
               Report &report)
{
    constexpr const char *kPass = "dead-code";
    // Both fixpoints (temp liveness and constant-address byte
    // liveness) live in liveness.cpp, shared with the optimizer; this
    // pass only renders their verdicts as diagnostics.
    const LivenessResult live = compute_liveness(program, cfg);
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            if (s.kind == StmtKind::Assign && !live.def_live[i]) {
                report.warning(i, kPass,
                               "dead assignment: the value of t" +
                                   std::to_string(s.temp) +
                                   " is never used");
            } else if (s.kind == StmtKind::Load && !live.def_live[i]) {
                report.note(i, kPass,
                            "loaded value t" + std::to_string(s.temp) +
                                " is never used (the load still "
                                "concretizes its address)");
            } else if (s.kind == StmtKind::Store &&
                       live.store_dead[i] &&
                       !lint_allowed(program, i, kPass)) {
                const u64 lo = s.addr->value();
                report.warning(
                    i, kPass,
                    "dead store: bytes [" + std::to_string(lo) + ", " +
                        std::to_string(lo + s.size) +
                        ") are overwritten on every path before "
                        "any read");
            }
        }
    }
}

void
pass_const_branch(const ir::Program &program, const Cfg &cfg,
                  const ProgramFacts &facts, Report &report)
{
    constexpr const char *kPass = "const-branch";
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            if (program.stmts[i].kind != StmtKind::CJmp)
                continue;
            const Decision d = facts.decision(i);
            if (d == Decision::Unknown ||
                lint_allowed(program, i, kPass)) {
                continue;
            }
            const bool always = d == Decision::AlwaysTrue;
            report.warning(i, kPass,
                           std::string("branch condition is always ") +
                               (always ? "true" : "false") + "; the " +
                               (always ? "false" : "true") +
                               " target is never taken");
        }
    }
}

void
pass_redundant_assume(const ir::Program &program, const Cfg &cfg,
                      const ProgramFacts &facts, Report &report)
{
    constexpr const char *kPass = "redundant-assume";
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            const ir::Stmt &s = program.stmts[i];
            // Constant conditions are pass_assume_placement's beat.
            if (s.kind != StmtKind::Assume || !s.expr ||
                s.expr->is_const()) {
                continue;
            }
            const Decision d = facts.decision(i);
            if (d == Decision::Unknown ||
                lint_allowed(program, i, kPass)) {
                continue;
            }
            if (d == Decision::AlwaysTrue) {
                report.note(i, kPass,
                            "assume is already implied by dataflow "
                            "facts on every path reaching it");
            } else {
                report.warning(i, kPass,
                               "assume is statically unsatisfiable: "
                               "dataflow facts prove the condition "
                               "false on every path reaching it");
            }
        }
    }
}

void
pass_dataflow_unreachable(const ir::Program &program, const Cfg &cfg,
                          const ProgramFacts &facts, Report &report)
{
    constexpr const char *kPass = "dataflow-unreachable";
    const auto dead = [&](BlockId b) {
        return cfg.reachable(b) && b < facts.block_reachable.size() &&
            !facts.block_reachable[b];
    };
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        // Graph-unreachable blocks are pass_unreachable's beat.
        if (!dead(b))
            continue;
        // Report dead-region entries only: a dead block none of whose
        // predecessors is live is a consequence of the entry finding,
        // not a separate one.
        bool entry = false;
        for (const BlockId p : cfg.blocks()[b].preds) {
            entry = entry || (p < facts.block_reachable.size() &&
                              facts.block_reachable[p]);
        }
        if (!entry)
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        if (lint_allowed(program, block.first, kPass))
            continue;
        const std::string range =
            block.size() == 1
                ? "statement " + std::to_string(block.first)
                : "statements " + std::to_string(block.first) + ".." +
                      std::to_string(block.end - 1);
        report.warning(block.first, kPass,
                       "unreachable under dataflow facts: a decided "
                       "condition guards every path into " + range);
    }
}

void
pass_assume_placement(const ir::Program &program, const Cfg &cfg,
                      Report &report)
{
    constexpr const char *kPass = "assume-placement";
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        bool after_memory = false;
        for (u32 i = block.first; i < block.end; ++i) {
            const ir::Stmt &s = program.stmts[i];
            if (s.kind == StmtKind::Load || s.kind == StmtKind::Store) {
                after_memory = true;
                continue;
            }
            if (s.kind != StmtKind::Assume || !s.expr)
                continue;
            if (s.expr->is_const()) {
                if (s.expr->value() != 0) {
                    report.note(i, kPass,
                                "vacuous assume of constant true");
                } else {
                    report.warning(i, kPass,
                                   "assume of constant false makes "
                                   "every path through it infeasible");
                }
                continue;
            }
            if (after_memory) {
                report.note(i, kPass,
                            "assume after a memory access in this "
                            "block; hoisting it earlier prunes "
                            "infeasible paths sooner");
            }
        }

        // An Assume leading the block is redundant when every
        // reachable predecessor edge is a CJmp that just decided the
        // same condition.
        u32 first_real = block.first;
        while (first_real < block.end &&
               program.stmts[first_real].kind == StmtKind::Comment) {
            ++first_real;
        }
        if (first_real >= block.end ||
            program.stmts[first_real].kind != StmtKind::Assume) {
            continue;
        }
        const ExprRef &cond = program.stmts[first_real].expr;
        if (!cond || cond->is_const())
            continue;
        bool any_pred = false;
        bool all_redundant = true;
        for (const BlockId p : block.preds) {
            if (!cfg.reachable(p))
                continue;
            any_pred = true;
            const ir::Stmt &last = program.stmts[cfg.blocks()[p].last()];
            if (last.kind != StmtKind::CJmp) {
                all_redundant = false;
                break;
            }
            const bool via_true =
                cfg.block_of(program.label_pos[last.target_true]) == b;
            const bool via_false =
                cfg.block_of(program.label_pos[last.target_false]) == b;
            const bool redundant =
                (via_true && !via_false &&
                 Expr::equal(cond, last.expr)) ||
                (via_false && !via_true &&
                 is_negation_of(cond, last.expr));
            if (!redundant) {
                all_redundant = false;
                break;
            }
        }
        if (any_pred && all_redundant) {
            report.note(first_real, kPass,
                        "assume restates the branch condition that "
                        "guards this block");
        }
    }
}

void
pass_same_target_cjmp(const ir::Program &program, const Cfg &cfg,
                      const PathStructure &structure, Report &report)
{
    constexpr const char *kPass = "same-target-cjmp";
    // An arm block is effect-free when every statement is a Comment or
    // the terminating Jmp — traversing it changes nothing a later
    // statement can observe.
    const auto effect_free = [&](BlockId b) {
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            const StmtKind kind = program.stmts[i].kind;
            if (kind != StmtKind::Comment && kind != StmtKind::Jmp)
                return false;
        }
        return true;
    };
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        const u32 last = block.last();
        const ir::Stmt &stmt = program.stmts[last];
        if (stmt.kind != StmtKind::CJmp)
            continue;
        if (lint_allowed(program, last, kPass))
            continue;
        const BlockId t_true =
            cfg.block_of(program.label_pos[stmt.target_true]);
        const BlockId t_false =
            cfg.block_of(program.label_pos[stmt.target_false]);
        if (t_true == t_false) {
            report.warning(last, kPass,
                           "cjmp: both targets enter the same block — "
                           "the branch splits paths that rejoin "
                           "immediately");
            continue;
        }
        // Diamond with effect-free arms: the join (the CJmp's
        // immediate post-dominator) is each successor, or one
        // Comment/Jmp-only block away from it.
        const BlockId join = structure.ipdom(b);
        if (join == kVirtualExit || join == kNoBlock)
            continue;
        bool trivial = true;
        for (const BlockId s : {t_true, t_false}) {
            if (s == join)
                continue;
            const BasicBlock &arm = cfg.blocks()[s];
            if (arm.succs.size() == 1 && arm.succs[0] == join &&
                arm.preds.size() == 1 && effect_free(s))
                continue;
            trivial = false;
            break;
        }
        if (trivial) {
            report.warning(last, kPass,
                           "cjmp: branch rejoins at its immediate "
                           "post-dominator with no intervening side "
                           "effects");
        }
    }
}

Report
run_pipeline(const ir::Program &program)
{
    Report report = Verifier::check(program);
    if (report.has_errors()) {
        report.sort();
        return report;
    }
    const Cfg cfg = Cfg::build(program);
    pass_unreachable(program, cfg, report);
    pass_dead_code(program, cfg, report);
    pass_assume_placement(program, cfg, report);
    const PathStructure structure = PathStructure::build(program, cfg);
    pass_same_target_cjmp(program, cfg, structure, report);
    // Dataflow-backed lints: pure mode (fresh variables for every
    // initial byte, no preconditions), so a finding holds for every
    // caller-supplied initial state. Skipped when the engine bails.
    const ProgramFacts facts = analyze_program(program, cfg);
    if (facts.analyzed) {
        pass_const_branch(program, cfg, facts, report);
        pass_redundant_assume(program, cfg, facts, report);
        pass_dataflow_unreachable(program, cfg, facts, report);
    }
    report.sort();
    return report;
}

} // namespace pokeemu::analysis
