#include "analysis/passes.h"

#include "analysis/walk.h"
#include "ir/expr.h"

namespace pokeemu::analysis {

using ir::Expr;
using ir::ExprKind;
using ir::ExprRef;
using ir::StmtKind;

namespace {

/** True when @p x is logical-not of @p y (either nesting order). */
bool
is_negation_of(const ExprRef &x, const ExprRef &y)
{
    const auto not_of = [](const ExprRef &a, const ExprRef &b) {
        return a->kind() == ExprKind::UnOp &&
               a->unop() == ir::UnOpKind::Not &&
               Expr::equal(a->a(), b);
    };
    return not_of(x, y) || not_of(y, x);
}

} // namespace

void
pass_unreachable(const ir::Program &program, const Cfg &cfg,
                 Report &report)
{
    constexpr const char *kPass = "unreachable";
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        if (cfg.reachable(b))
            continue;
        const BasicBlock &block = cfg.blocks()[b];
        // IrBuilder::finish() appends a guard Halt when the program
        // does not already end in one; after a trailing jump that
        // guard is unreachable by construction. Expected, so a note.
        const bool is_guard_halt =
            block.end == program.stmts.size() && block.size() == 1 &&
            program.stmts[block.first].kind == StmtKind::Halt;
        const std::string range =
            block.size() == 1
                ? "statement " + std::to_string(block.first)
                : "statements " + std::to_string(block.first) + ".." +
                      std::to_string(block.end - 1);
        if (is_guard_halt) {
            report.note(block.first, kPass,
                        "unreachable builder guard Halt");
        } else {
            report.warning(block.first, kPass,
                           "unreachable: no path from the entry "
                           "executes " + range);
        }
    }
}

void
pass_dead_code(const ir::Program &program, const Cfg &cfg,
               Report &report)
{
    constexpr const char *kPass = "dead-code";
    const u32 num_temps = program.num_temps();
    const u32 nb = cfg.num_blocks();

    // Backward liveness to a fixpoint: live_out[b] is the union of the
    // successors' live_in, and the transfer walks the block backward.
    std::vector<std::vector<bool>> live_in(
        nb, std::vector<bool>(num_temps, false));
    const auto block_live_in = [&](BlockId b) {
        const BasicBlock &block = cfg.blocks()[b];
        std::vector<bool> live(num_temps, false);
        for (const BlockId s : block.succs) {
            for (u32 t = 0; t < num_temps; ++t)
                live[t] = live[t] || live_in[s][t];
        }
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            const s64 def = stmt_def(s);
            if (def >= 0 && def < static_cast<s64>(num_temps))
                live[static_cast<u32>(def)] = false;
            for_each_stmt_use(s, [&](u32 t, unsigned) {
                if (t < num_temps)
                    live[t] = true;
            });
        }
        return live;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        // Postorder (successors before predecessors) converges fastest
        // for a backward problem.
        const auto &rpo = cfg.reverse_postorder();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            std::vector<bool> next = block_live_in(*it);
            if (next != live_in[*it]) {
                live_in[*it] = std::move(next);
                changed = true;
            }
        }
    }

    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        std::vector<bool> live(num_temps, false);
        for (const BlockId s : block.succs) {
            for (u32 t = 0; t < num_temps; ++t)
                live[t] = live[t] || live_in[s][t];
        }
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            const s64 def = stmt_def(s);
            const bool def_live =
                def >= 0 && def < static_cast<s64>(num_temps) &&
                live[static_cast<u32>(def)];
            if (s.kind == StmtKind::Assign && !def_live) {
                report.warning(i, kPass,
                               "dead assignment: the value of t" +
                                   std::to_string(s.temp) +
                                   " is never used");
            } else if (s.kind == StmtKind::Load && !def_live) {
                report.note(i, kPass,
                            "loaded value t" + std::to_string(s.temp) +
                                " is never used (the load still "
                                "concretizes its address)");
            }
            if (def >= 0 && def < static_cast<s64>(num_temps))
                live[static_cast<u32>(def)] = false;
            for_each_stmt_use(s, [&](u32 t, unsigned) {
                if (t < num_temps)
                    live[t] = true;
            });
        }
    }

    // Within-block dead stores at constant addresses: a store fully
    // overwritten before any possible read. Any Load, or any store
    // through a symbolic address, may alias and keeps prior stores
    // live.
    struct PendingStore
    {
        u32 stmt_index;
        u64 addr;
        unsigned size;
    };
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        std::vector<PendingStore> pending;
        for (u32 i = block.first; i < block.end; ++i) {
            const ir::Stmt &s = program.stmts[i];
            if (s.kind == StmtKind::Load) {
                pending.clear();
            } else if (s.kind == StmtKind::Store) {
                if (!s.addr || !s.addr->is_const()) {
                    pending.clear();
                    continue;
                }
                const u64 lo = s.addr->value();
                const u64 hi = lo + s.size;
                std::vector<PendingStore> kept;
                for (const PendingStore &p : pending) {
                    if (lo <= p.addr && p.addr + p.size <= hi) {
                        report.warning(
                            p.stmt_index, kPass,
                            "dead store: bytes [" +
                                std::to_string(p.addr) + ", " +
                                std::to_string(p.addr + p.size) +
                                ") are overwritten by stmt " +
                                std::to_string(i) +
                                " before any read");
                    } else if (p.addr < hi && lo < p.addr + p.size) {
                        // Partially overlapped: no longer a candidate.
                    } else {
                        kept.push_back(p);
                    }
                }
                pending = std::move(kept);
                pending.push_back({i, lo, s.size});
            }
        }
    }
}

void
pass_assume_placement(const ir::Program &program, const Cfg &cfg,
                      Report &report)
{
    constexpr const char *kPass = "assume-placement";
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        bool after_memory = false;
        for (u32 i = block.first; i < block.end; ++i) {
            const ir::Stmt &s = program.stmts[i];
            if (s.kind == StmtKind::Load || s.kind == StmtKind::Store) {
                after_memory = true;
                continue;
            }
            if (s.kind != StmtKind::Assume || !s.expr)
                continue;
            if (s.expr->is_const()) {
                if (s.expr->value() != 0) {
                    report.note(i, kPass,
                                "vacuous assume of constant true");
                } else {
                    report.warning(i, kPass,
                                   "assume of constant false makes "
                                   "every path through it infeasible");
                }
                continue;
            }
            if (after_memory) {
                report.note(i, kPass,
                            "assume after a memory access in this "
                            "block; hoisting it earlier prunes "
                            "infeasible paths sooner");
            }
        }

        // An Assume leading the block is redundant when every
        // reachable predecessor edge is a CJmp that just decided the
        // same condition.
        u32 first_real = block.first;
        while (first_real < block.end &&
               program.stmts[first_real].kind == StmtKind::Comment) {
            ++first_real;
        }
        if (first_real >= block.end ||
            program.stmts[first_real].kind != StmtKind::Assume) {
            continue;
        }
        const ExprRef &cond = program.stmts[first_real].expr;
        if (!cond || cond->is_const())
            continue;
        bool any_pred = false;
        bool all_redundant = true;
        for (const BlockId p : block.preds) {
            if (!cfg.reachable(p))
                continue;
            any_pred = true;
            const ir::Stmt &last = program.stmts[cfg.blocks()[p].last()];
            if (last.kind != StmtKind::CJmp) {
                all_redundant = false;
                break;
            }
            const bool via_true =
                cfg.block_of(program.label_pos[last.target_true]) == b;
            const bool via_false =
                cfg.block_of(program.label_pos[last.target_false]) == b;
            const bool redundant =
                (via_true && !via_false &&
                 Expr::equal(cond, last.expr)) ||
                (via_false && !via_true &&
                 is_negation_of(cond, last.expr));
            if (!redundant) {
                all_redundant = false;
                break;
            }
        }
        if (any_pred && all_redundant) {
            report.note(first_real, kPass,
                        "assume restates the branch condition that "
                        "guards this block");
        }
    }
}

Report
run_pipeline(const ir::Program &program)
{
    Report report = Verifier::check(program);
    if (report.has_errors())
        return report;
    const Cfg cfg = Cfg::build(program);
    pass_unreachable(program, cfg, report);
    pass_dead_code(program, cfg, report);
    pass_assume_placement(program, cfg, report);
    return report;
}

} // namespace pokeemu::analysis
