/**
 * @file
 * Translation validation for the IR optimizer (optimize.h) — the
 * static-analysis half of the paper's §7 equivalence-checking
 * extension, aimed inward: instead of comparing two emulators, it
 * proves each *optimized* semantics program equivalent to the builder
 * original with the decision procedure.
 *
 * Method: the original is explored exhaustively; every completed path
 * contributes (condition C_p, final touched bytes, halt code). For
 * each path, the optimized program is explored *under C_p as
 * preconditions*, so its concretization choices are forced onto the
 * same input subspace — this is what makes the comparison meaningful
 * for programs with SingleRandom address concretization, where two
 * independent explorations would pin different representative
 * addresses and the cross-pair product would be vacuously
 * contradictory. For every (p, q) pair the validator compares the
 * halt codes (concrete per path) and asks the solver one question:
 * can C_p ∧ C_q make any output byte differ (EFLAGS bytes compared
 * under a caller-supplied ignore mask — the undefined-flags contract)?
 * A Sat verdict yields a concrete counterexample model, reported
 * verbatim.
 *
 * The verdict is a *proof* (`proven`) only when both explorations
 * completed; with SingleRandom concretization it is a proof relative
 * to the original's explored representative subspaces — identical in
 * strength to what exploration itself guarantees downstream.
 */
#ifndef POKEEMU_ANALYSIS_EQUIV_H
#define POKEEMU_ANALYSIS_EQUIV_H

#include <optional>
#include <string>

#include "symexec/explorer.h"

namespace pokeemu::analysis {

/** Knobs for one validation run. */
struct EquivOptions
{
    /** Per-side path cap; hitting it demotes `proven`. */
    u64 max_paths = 4096;
    u64 max_steps = 1u << 20;
    u64 seed = 1;
    /** Environment constraints shared by both sides (e.g. bounding a
     *  rep counter so string loops explore completely). */
    std::vector<ir::ExprRef> preconditions;
    /** Whole-validation budget; expiry demotes `proven`. */
    support::Deadline deadline{};
    /**
     * When nonzero: the 4 bytes at this address hold EFLAGS and are
     * compared under ~eflags_ignore_mask (bits the architecture
     * leaves undefined for this instruction may differ freely).
     */
    u32 eflags_addr = 0;
    u32 eflags_ignore_mask = 0;
};

/** A concrete witness that the two programs disagree. */
struct EquivCounterexample
{
    /** Model over the shared input variables, verbatim from the
     *  solver (or the optimized path's own assignment for halt-code
     *  and missing-path mismatches). */
    solver::Assignment assignment;
    bool halt_mismatch = false;
    /** The optimized side completed no path under the original path's
     *  condition (despite a complete exploration). */
    bool missing_path = false;
    u32 original_halt = 0;
    u32 optimized_halt = 0;
    /** Differing byte (valid when !halt_mismatch). */
    u32 addr = 0;
    u64 original_path = 0;  ///< Path index in the original.
    u64 optimized_path = 0; ///< Path index within that path's re-run.

    /** Human-readable dump, every assigned variable by name. */
    std::string to_string(const symexec::VarPool &pool) const;
};

/** Outcome of validate_translation. */
struct EquivResult
{
    /** No difference found over the explored paths. */
    bool equivalent = false;
    /** Both sides explored exhaustively: `equivalent` is a proof. */
    bool proven = false;
    std::optional<EquivCounterexample> counterexample;
    u64 original_paths = 0;
    u64 optimized_paths = 0; ///< Summed over all per-path re-runs.
    u64 pairs_checked = 0;
    u64 solver_queries = 0;
    u64 bytes_compared = 0;
    /** Output bytes discharged by structural equality, no solver. */
    u64 bytes_structural = 0;
};

/**
 * Prove @p optimized equivalent to @p original over every input the
 * original's exploration covers: same final memory (modulo the EFLAGS
 * ignore mask), same halt code, same fault behavior.
 *
 * @param pool shared variable pool — both programs read their inputs
 *        through @p initial, so a model maps back to machine state.
 */
EquivResult validate_translation(const ir::Program &original,
                                 const ir::Program &optimized,
                                 symexec::VarPool &pool,
                                 const symexec::InitialByteFn &initial,
                                 const EquivOptions &options = {});

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_EQUIV_H
