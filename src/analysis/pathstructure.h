/**
 * @file
 * Static path-structure analysis over an analysis::Cfg: dominator and
 * post-dominator trees, a minimal path cover of the DAG-ified CFG, and
 * feasible-path counts with dataflow-decided infeasible edges pruned.
 *
 * The paper reaches complete path coverage for ~95% of instructions at
 * a path cap of 8192 (§6); affording that cap means spending the
 * per-branch decisions where they buy new structure. Empc (PAPERS.md)
 * shows the right static scaffold: decompose the CFG into a *minimal
 * path cover* — the fewest vertex-disjoint chains that touch every
 * block — and steer exploration toward paths that complete uncovered
 * chains. This module computes that scaffold once per unit, like the
 * verifier; coverage::PathCoverFirst consumes it online.
 *
 * Contents, all deterministic functions of (Cfg, facts):
 *
 *  - Dominators / post-dominators via the Cooper-Harvey-Kennedy
 *    iterative algorithm. Post-dominators run on the reverse graph
 *    under a virtual exit that joins every Halt block (ipdom of a
 *    block whose sides halt separately is kVirtualExit).
 *  - DAG-ification: back edges classified by DFS (an edge to a block
 *    on the current DFS stack); all counts and chains below are over
 *    the remaining acyclic graph.
 *  - Infeasible-edge pruning: a CJmp whose condition the PR 5 dataflow
 *    facts decide contributes only its taken edge; blocks the facts
 *    prove dataflow-unreachable contribute nothing.
 *  - Feasible-path counts: per block, the number of DAG paths
 *    entry->block (`paths_from_entry`) and block->exit
 *    (`paths_to_exit`), saturating at kPathCountCap so products never
 *    overflow.
 *  - Minimal path cover: vertex-disjoint chains via maximum bipartite
 *    matching (Kuhn's augmenting paths) on the DAG's edge relation;
 *    #chains = #reachable blocks - |matching| is minimal by König's
 *    theorem.
 *  - Per-block reachable-chain bitsets: which chains a path through
 *    this block can still touch downstream (over non-pruned edges,
 *    back edges included — loops genuinely revisit structure).
 */
#ifndef POKEEMU_ANALYSIS_PATHSTRUCTURE_H
#define POKEEMU_ANALYSIS_PATHSTRUCTURE_H

#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace pokeemu::analysis {

/** Sentinel BlockId: no immediate dominator (unreachable block). */
constexpr BlockId kNoBlock = ~BlockId{0};

/** Sentinel BlockId: the virtual exit joining all Halt blocks. */
constexpr BlockId kVirtualExit = ~BlockId{0} - 1;

/** Sentinel chain id for unreachable blocks. */
constexpr u32 kNoChain = ~u32{0};

/** Path counts saturate here; "at least this many" beyond. */
constexpr u64 kPathCountCap = u64{1} << 62;

/** One vertex-disjoint chain of the minimal path cover, in control-
 *  flow order (consecutive entries are DAG edges). */
struct CoverChain
{
    std::vector<BlockId> blocks;
};

/** See file comment. */
class PathStructure
{
  public:
    /**
     * Analyze @p program through @p cfg (which must be
     * Cfg::build(program), same precondition as every lint pass).
     * @p facts may be null (no infeasible-edge pruning) or the
     * analyze_program result for the same program; unanalyzed facts
     * are ignored. The result references none of the arguments, so all
     * may die after build() returns. Deterministic: depends only on
     * the CFG shape and the decided facts.
     */
    static PathStructure build(const ir::Program &program,
                               const Cfg &cfg,
                               const ProgramFacts *facts = nullptr);

    u32 num_blocks() const { return num_blocks_; }

    /** Immediate dominator; entry's idom is itself, kNoBlock for
     *  unreachable blocks. */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** Immediate post-dominator; kVirtualExit when the sides of @p b
     *  only rejoin at program exit, kNoBlock when unreachable. */
    BlockId ipdom(BlockId b) const { return ipdom_[b]; }

    /** Does @p a dominate @p b (reflexive)? False when either is
     *  unreachable. */
    bool dominates(BlockId a, BlockId b) const;

    /** Does @p a post-dominate @p b (reflexive)? kVirtualExit
     *  post-dominates every reachable block. */
    bool post_dominates(BlockId a, BlockId b) const;

    /** Is succs[succ_index] of @p from a DFS back edge? */
    bool back_edge(BlockId from, std::size_t succ_index) const
    {
        return back_edge_[from][succ_index];
    }

    /** Is succs[succ_index] of @p from pruned as infeasible (decided
     *  CJmp direction or dataflow-unreachable endpoint)? */
    bool edge_pruned(BlockId from, std::size_t succ_index) const
    {
        return pruned_[from][succ_index];
    }

    /** DAG paths entry -> @p b over non-pruned, non-back edges;
     *  saturates at kPathCountCap. 0 for unreachable/pruned blocks. */
    u64 paths_from_entry(BlockId b) const { return paths_in_[b]; }

    /** DAG paths @p b -> any exit; saturates at kPathCountCap. */
    u64 paths_to_exit(BlockId b) const { return paths_out_[b]; }

    /** DAG paths through @p b (product of the two, saturating). */
    u64 paths_through(BlockId b) const;

    /** Total DAG paths entry -> exit (the unit's static path count
    *   after pruning); saturates at kPathCountCap. */
    u64 total_paths() const { return paths_out_[entry_]; }

    const std::vector<CoverChain> &chains() const { return chains_; }

    u32 num_chains() const
    {
        return static_cast<u32>(chains_.size());
    }

    /** Chain containing @p b; kNoChain for unreachable blocks. */
    u32 chain_of(BlockId b) const { return chain_of_[b]; }

    /** Next block in @p b's chain, or kNoBlock at a chain tail. */
    BlockId chain_next(BlockId b) const { return chain_next_[b]; }

    /**
     * Bitset (num_chains bits, 64 per word) of chains reachable from
     * @p b over non-pruned edges, back edges included; b's own chain
     * is always set. Empty for unreachable blocks.
     */
    const std::vector<u64> &reachable_chains(BlockId b) const
    {
        return reach_chains_[b];
    }

    /** Words per reachable-chain bitset. */
    std::size_t chain_words() const { return chain_words_; }

  private:
    u32 num_blocks_ = 0;
    BlockId entry_ = 0;
    std::vector<BlockId> idom_;
    std::vector<BlockId> ipdom_;
    std::vector<std::vector<bool>> back_edge_; ///< Shape of succs.
    std::vector<std::vector<bool>> pruned_;    ///< Shape of succs.
    std::vector<u64> paths_in_;
    std::vector<u64> paths_out_;
    std::vector<CoverChain> chains_;
    std::vector<u32> chain_of_;
    std::vector<BlockId> chain_next_;
    std::size_t chain_words_ = 0;
    std::vector<std::vector<u64>> reach_chains_;
    /** Dominator-tree depth per block (entry 0), for dominates(). */
    std::vector<u32> dom_depth_;
    std::vector<u32> pdom_depth_;
};

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_PATHSTRUCTURE_H
