#include "analysis/diagnostic.h"

namespace pokeemu::analysis {

const char *
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Diagnostic::to_string() const
{
    std::string out = severity_name(severity);
    out += ": [";
    out += pass;
    out += "] ";
    if (stmt_index != kNoStmt) {
        out += "stmt ";
        out += std::to_string(stmt_index);
        out += ": ";
    }
    out += message;
    return out;
}

std::size_t
Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics_)
        if (d.severity == severity)
            ++n;
    return n;
}

void
Report::merge(const Report &other)
{
    diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                        other.diagnostics_.end());
}

std::string
Report::to_string() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics_) {
        out += d.to_string();
        out += '\n';
    }
    return out;
}

} // namespace pokeemu::analysis
