#include "analysis/diagnostic.h"

#include <algorithm>
#include <tuple>

namespace pokeemu::analysis {

const char *
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Diagnostic::to_string() const
{
    std::string out = severity_name(severity);
    out += ": [";
    out += pass;
    out += "] ";
    if (stmt_index != kNoStmt) {
        out += "stmt ";
        out += std::to_string(stmt_index);
        out += ": ";
    }
    out += message;
    return out;
}

std::size_t
Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics_)
        if (d.severity == severity)
            ++n;
    return n;
}

void
Report::merge(const Report &other)
{
    diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                        other.diagnostics_.end());
}

void
Report::sort()
{
    // kNoStmt is the all-ones sentinel, so plain unsigned comparison
    // already puts program-level findings last. Errors sort before
    // warnings before notes within one (stmt, pass) group.
    std::stable_sort(
        diagnostics_.begin(), diagnostics_.end(),
        [](const Diagnostic &x, const Diagnostic &y) {
            return std::make_tuple(x.stmt_index, x.pass,
                                   static_cast<int>(y.severity),
                                   x.message) <
                   std::make_tuple(y.stmt_index, y.pass,
                                   static_cast<int>(x.severity),
                                   y.message);
        });
}

std::string
Report::to_string() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics_) {
        out += d.to_string();
        out += '\n';
    }
    return out;
}

} // namespace pokeemu::analysis
