/**
 * @file
 * Forward fixpoint dataflow over analysis::Cfg: per-statement facts the
 * explorer, the lint passes, and the harness filter consume.
 *
 * The engine symbolically executes every block over a *merged* abstract
 * state (one state per block, paths joined with per-edge choice
 * variables) and evaluates branch/assume conditions against the
 * known-bits/interval domain (domains.h) plus a set of predicates known
 * true on every path. Three consumers:
 *
 *  - symexec::PathExplorer: a CJmp/Assume condition whose Decision is
 *    AlwaysTrue/AlwaysFalse needs no solver feasibility probe — the
 *    paper's per-branch queries (§3.1.2) dominated exploration cost, so
 *    each decided statement saves one Unsat query per decision-tree
 *    node that reaches it (PruneMode, explorer.h).
 *  - analysis::run_pipeline lint passes: constant-condition branches,
 *    cross-block dead stores, redundant assumes, blocks unreachable
 *    under dataflow facts (passes.h).
 *  - analysis::flag_write_summary: the derived EFLAGS may/must-write
 *    oracle cross-checked against harness::undefined_flags_mask — the
 *    paper's hand-maintained undefined-flag filter (§6.2), machine-
 *    audited.
 *
 * Soundness: every fact over-approximates the set of concrete
 * executions. Loops are handled by widening unstable state slots to
 * stable fresh variables after a bounded number of rounds; because the
 * per-statement variables the analysis invents (unknown loads, join
 * choices, widened slots) are *reused* across loop iterations, branch
 * Decisions are only reported for statements in blocks not reachable
 * from a loop (cycle-tainted blocks get Decision::Unknown) — in
 * acyclic regions every invented variable stands for exactly one
 * dynamic value, so "this condition evaluates constant for all
 * valuations" transfers to the concrete exploration. Write summaries do
 * not rely on variable-binding uniqueness and stay valid everywhere.
 */
#ifndef POKEEMU_ANALYSIS_DATAFLOW_H
#define POKEEMU_ANALYSIS_DATAFLOW_H

#include <functional>
#include <optional>
#include <set>

#include "analysis/cfg.h"
#include "analysis/domains.h"

namespace pokeemu::analysis {

/**
 * How the explorer consumes Decisions (threaded from the pipeline down
 * through explore::StateExploreOptions into symexec::ExplorerConfig).
 *
 *  - Off: every feasibility probe is dispatched to the solver. Decided
 *    probes bypass the query memo so memo statistics are invariant
 *    across modes (their Unsat results could never be hit again — each
 *    probe's path condition is unique to its decision-tree node).
 *  - On: decided probes are answered by the dataflow fact: the tree
 *    node, seeded-rng draw, frontier-policy consultation and path
 *    condition evolve exactly as in Off — only the solver dispatch is
 *    skipped and counted in `solver_queries_avoided`.
 *  - CrossCheck: like On, but every skipped probe is also dispatched
 *    to a *side* solver (fresh instance, no memo) and must come back
 *    Unsat; a Sat verdict means an unsound fact and panics. The main
 *    solver sees exactly the On-mode query stream, so On and
 *    CrossCheck runs are byte-identical end to end.
 */
enum class PruneMode : u8 { Off, On, CrossCheck };

/** Printable mode name, e.g. "on". */
const char *prune_mode_name(PruneMode mode);

/** Statically-known value of a CJmp/Assume condition. */
enum class Decision : u8 { Unknown, AlwaysFalse, AlwaysTrue };

/** Knobs for one analysis run. */
struct DataflowConfig
{
    /**
     * Initial contents of a memory byte, mirroring the explorer's
     * InitialByteFn (must be deterministic by address; evaluated at
     * most once per address). Null = "pure mode": the engine invents
     * one fresh 8-bit variable per byte, which is what the flags
     * oracle's structural unchanged-vs-written classification needs.
     */
    std::function<ir::ExprRef(u32)> initial_byte;

    /**
     * Conditions established before entry (the explorer's
     * preconditions). Seeded into the entry predicate set and mined
     * for variable-level facts.
     */
    std::vector<ir::ExprRef> assumes;

    /**
     * Fixpoint rounds before widening kicks in. Acyclic programs
     * converge in two rounds regardless; loops give up precision for
     * convergence after this many.
     */
    unsigned max_rounds_before_widen = 3;

    /** Hard round valve; exceeded -> facts report converged = false
     *  and every Decision stays Unknown. */
    unsigned max_rounds = 24;

    /**
     * Variable-id base for analysis-invented variables (initial bytes
     * in pure mode, unknown loads, join choices, widened slots). Must
     * not collide with the caller's VarPool ids.
     */
    u32 private_var_base = 1u << 30;
};

/** Per-unit may/must write summary over the byte-addressed state. */
struct WriteSummary
{
    /** Constant addresses some path writes. */
    std::set<u32> may_bytes;
    /** Constant addresses every Halt exit has overwritten. */
    std::set<u32> must_bytes;
    /** Some store ran through a non-constant address... */
    bool symbolic_store = false;
    /** ...landing somewhere in [clobber_lo, clobber_hi]. */
    u32 clobber_lo = 0;
    u32 clobber_hi = 0;

    bool may_write(u32 addr) const
    {
        if (symbolic_store && addr >= clobber_lo && addr <= clobber_hi)
            return true;
        return may_bytes.count(addr) != 0;
    }

    bool must_write(u32 addr) const
    {
        return must_bytes.count(addr) != 0;
    }
};

/** Everything one analysis run proves about a program. */
struct ProgramFacts
{
    /** False when the engine bailed (round valve, malformed CFG);
     *  consumers must then treat every fact as absent. */
    bool analyzed = false;
    /** Fixpoint reached within DataflowConfig::max_rounds. */
    bool converged = false;

    /** Per statement; Unknown for non-CJmp/Assume statements, for
     *  cycle-tainted blocks, and for dataflow-unreachable code. */
    std::vector<Decision> decisions;
    /** Statement executes on some abstract path (refines CFG
     *  reachability through decided branches). */
    std::vector<bool> stmt_reachable;
    /** Per block; see stmt_reachable. */
    std::vector<bool> block_reachable;
    /** Per block: reachable from a loop (Decisions suppressed). */
    std::vector<bool> cycle_tainted;
    /** Per statement: the Load/Store address when the analysis proves
     *  it constant on every path (weaker-than-syntactic: the raw
     *  address expression may mention temps). */
    std::vector<std::optional<u32>> const_addr;

    WriteSummary writes;

    /** Decided CJmp / Assume statement counts (reachable only). */
    u64 decided_cjmps = 0;
    u64 decided_assumes = 0;

    Decision decision(u32 stmt_index) const
    {
        return analyzed && stmt_index < decisions.size()
            ? decisions[stmt_index]
            : Decision::Unknown;
    }
};

/**
 * Run the engine over @p program. @p cfg must be Cfg::build(program)
 * of a verifier-clean program (same precondition as every lint pass).
 */
ProgramFacts analyze_program(const ir::Program &program, const Cfg &cfg,
                             const DataflowConfig &config = {});

/**
 * Derived EFLAGS write oracle for one semantics program.
 *
 * `may` / `must` are masks over EFLAGS bit positions: bit i is in
 * `may` when some completed execution can leave it different from its
 * initial value, and in `must` when every completed execution computes
 * it (a defined function of the inputs — never the conditionally-kept
 * initial bit). Instructions whose semantics keep a flag through an
 * ite(count == 0, old, computed) therefore land in may-but-not-must,
 * exactly the shape harness::undefined_flags_mask documents.
 *
 * "Completed" means Halt with code @p ok_halt_code (hifi::kHaltOk);
 * exits with a non-constant code are included conservatively. With no
 * completing exit, or when the analysis bailed, `capped` is set and
 * the masks are empty.
 */
struct FlagSummary
{
    u32 may = 0;
    u32 must = 0;
    u64 ok_exits = 0;
    /** The fixpoint converged; masks are meaningful when ok_exits>0. */
    bool analyzed = false;
    /** No usable summary: the analysis bailed or nothing completes. */
    bool capped = false;
};

/** The six status-flag positions (CF|PF|AF|ZF|SF|OF). */
constexpr u32 kStatusFlagsMask = 0x8d5;

FlagSummary flag_write_summary(const ir::Program &program,
                               u32 eflags_addr, u32 ok_halt_code = 0);

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_DATAFLOW_H
