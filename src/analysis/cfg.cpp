#include "analysis/cfg.h"

#include <algorithm>

namespace pokeemu::analysis {

using ir::StmtKind;

namespace {

bool
is_terminator(StmtKind kind)
{
    return kind == StmtKind::CJmp || kind == StmtKind::Jmp ||
           kind == StmtKind::Halt;
}

} // namespace

Cfg
Cfg::build(const ir::Program &program)
{
    Cfg cfg;
    const u32 n = static_cast<u32>(program.stmts.size());
    if (n == 0)
        return cfg;

    // Leaders: stmt 0, every label target, every post-terminator stmt.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (const u32 pos : program.label_pos) {
        assert(pos < n && "Cfg precondition: labels bound in range");
        leader[pos] = true;
    }
    for (u32 i = 0; i + 1 < n; ++i) {
        if (is_terminator(program.stmts[i].kind))
            leader[i + 1] = true;
    }

    cfg.block_of_.resize(n);
    for (u32 i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock block;
            block.first = i;
            cfg.blocks_.push_back(block);
        }
        cfg.block_of_[i] = static_cast<BlockId>(cfg.blocks_.size() - 1);
    }
    for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
        cfg.blocks_[b].end = b + 1 < cfg.blocks_.size()
            ? cfg.blocks_[b + 1].first
            : n;
    }

    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        BasicBlock &block = cfg.blocks_[b];
        const ir::Stmt &last = program.stmts[block.last()];
        switch (last.kind) {
          case StmtKind::CJmp:
            block.succs.push_back(
                cfg.block_of_[program.label_pos[last.target_true]]);
            block.succs.push_back(
                cfg.block_of_[program.label_pos[last.target_false]]);
            break;
          case StmtKind::Jmp:
            block.succs.push_back(
                cfg.block_of_[program.label_pos[last.target_true]]);
            break;
          case StmtKind::Halt:
            break;
          default:
            if (block.end < n)
                block.succs.push_back(cfg.block_of_[block.end]);
            else
                block.falls_off_end = true;
            break;
        }
        // A CJmp with both targets equal yields one edge, not two.
        std::sort(block.succs.begin(), block.succs.end());
        block.succs.erase(
            std::unique(block.succs.begin(), block.succs.end()),
            block.succs.end());
    }
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
        for (const BlockId s : cfg.blocks_[b].succs)
            cfg.blocks_[s].preds.push_back(b);
    }

    // Iterative DFS from the entry: reachability + postorder, which
    // reversed gives the dataflow iteration order.
    cfg.reachable_.assign(cfg.num_blocks(), false);
    std::vector<std::pair<BlockId, u32>> stack; // (block, next succ).
    std::vector<BlockId> postorder;
    cfg.reachable_[cfg.entry()] = true;
    stack.emplace_back(cfg.entry(), 0);
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const BasicBlock &block = cfg.blocks_[b];
        if (next < block.succs.size()) {
            const BlockId s = block.succs[next++];
            if (!cfg.reachable_[s]) {
                cfg.reachable_[s] = true;
                stack.emplace_back(s, 0);
            }
        } else {
            postorder.push_back(b);
            stack.pop_back();
        }
    }
    cfg.rpo_.assign(postorder.rbegin(), postorder.rend());
    return cfg;
}

} // namespace pokeemu::analysis
