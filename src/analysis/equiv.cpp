#include "analysis/equiv.h"

#include <cstdio>
#include <map>

namespace pokeemu::analysis {

namespace E = ir::E;
using symexec::PathStatus;

namespace {

/** Everything kept from one completed path of the original. */
struct OriginalPath
{
    u64 index = 0;
    PathStatus status = PathStatus::Halted;
    u32 halt_code = 0;
    std::vector<ir::ExprRef> conjuncts;
    solver::Assignment assignment;
    std::map<u32, ir::ExprRef> bytes; ///< Final touched bytes.
};

/** Final value of byte @p addr: touched expression or initial. */
ir::ExprRef
byte_value(const std::map<u32, ir::ExprRef> &bytes, u32 addr,
           const symexec::InitialByteFn &initial)
{
    const auto it = bytes.find(addr);
    return it != bytes.end() ? it->second : initial(addr);
}

} // namespace

std::string
EquivCounterexample::to_string(const symexec::VarPool &pool) const
{
    std::string out;
    if (missing_path) {
        out = "no optimized path completes under original path " +
              std::to_string(original_path) + "'s condition";
    } else if (halt_mismatch) {
        out = "halt code mismatch: original path " +
              std::to_string(original_path) + " halts " +
              std::to_string(original_halt) + ", optimized path " +
              std::to_string(optimized_path) + " halts " +
              std::to_string(optimized_halt);
    } else {
        char buf[16];
        std::snprintf(buf, sizeof buf, "0x%08x", addr);
        out = "output byte at " + std::string(buf) +
              " differs (original path " +
              std::to_string(original_path) + ", optimized path " +
              std::to_string(optimized_path) + ")";
    }
    out += "\nmodel:";
    bool any = false;
    for (const ir::ExprRef &var : pool.all()) {
        if (!assignment.has(var->var_id()))
            continue;
        any = true;
        char buf[24];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(
                          assignment.get(var->var_id())));
        out += "\n  " + var->name() + " = " + buf;
    }
    if (!any)
        out += " (empty — any input)";
    return out;
}

EquivResult
validate_translation(const ir::Program &original,
                     const ir::Program &optimized,
                     symexec::VarPool &pool,
                     const symexec::InitialByteFn &initial,
                     const EquivOptions &options)
{
    EquivResult result;

    symexec::ExplorerConfig config;
    config.max_paths = options.max_paths;
    config.max_steps = options.max_steps;
    config.seed = options.seed;
    config.preconditions = options.preconditions;
    config.deadline = options.deadline;

    std::vector<OriginalPath> paths;
    bool orig_complete = false;
    {
        symexec::PathExplorer explorer(original, pool, initial,
                                       config);
        const symexec::ExploreStats stats = explorer.explore(
            [&](const symexec::PathInfo &info,
                symexec::SymbolicMemory &memory) {
                OriginalPath p;
                p.index = info.index;
                p.status = info.status;
                p.halt_code = info.halt_code;
                p.conjuncts = info.path_condition;
                p.assignment = info.assignment;
                memory.for_each_touched(
                    [&](u32 addr, const ir::ExprRef &value) {
                        p.bytes.emplace(addr, value);
                    });
                paths.push_back(std::move(p));
            });
        orig_complete = stats.complete && !stats.deadline_expired;
    }
    result.original_paths = paths.size();

    bool all_proven = orig_complete;
    solver::Solver solver;
    for (const OriginalPath &p : paths) {
        if (options.deadline.expired()) {
            all_proven = false;
            break;
        }
        if (p.status == PathStatus::StepLimit) {
            // Truncated run: no final state to compare.
            all_proven = false;
            continue;
        }

        symexec::ExplorerConfig qconfig = config;
        qconfig.preconditions.insert(qconfig.preconditions.end(),
                                     p.conjuncts.begin(),
                                     p.conjuncts.end());
        u64 q_count = 0;
        bool mismatch = false;
        symexec::PathExplorer explorer(optimized, pool, initial,
                                       qconfig);
        const symexec::ExploreStats qstats = explorer.explore(
            [&](const symexec::PathInfo &qinfo,
                symexec::SymbolicMemory &qmemory) {
                ++q_count;
                if (mismatch)
                    return;
                ++result.pairs_checked;
                if (qinfo.status == PathStatus::StepLimit) {
                    all_proven = false;
                    return;
                }
                if (qinfo.halt_code != p.halt_code) {
                    EquivCounterexample cx;
                    cx.halt_mismatch = true;
                    cx.original_halt = p.halt_code;
                    cx.optimized_halt = qinfo.halt_code;
                    cx.original_path = p.index;
                    cx.optimized_path = qinfo.index;
                    // The optimized path ran under C_p, so its own
                    // model satisfies both sides.
                    cx.assignment = qinfo.assignment;
                    result.counterexample = std::move(cx);
                    mismatch = true;
                    return;
                }

                std::map<u32, ir::ExprRef> qbytes;
                qmemory.for_each_touched(
                    [&](u32 addr, const ir::ExprRef &value) {
                        qbytes.emplace(addr, value);
                    });
                std::vector<u32> addrs;
                for (const auto &[addr, value] : p.bytes)
                    addrs.push_back(addr);
                for (const auto &[addr, value] : qbytes) {
                    if (p.bytes.count(addr) == 0)
                        addrs.push_back(addr);
                }

                std::vector<std::pair<u32, ir::ExprRef>> diffs;
                for (const u32 addr : addrs) {
                    ir::ExprRef a = byte_value(p.bytes, addr, initial);
                    ir::ExprRef b = byte_value(qbytes, addr, initial);
                    if (options.eflags_addr != 0 &&
                        addr >= options.eflags_addr &&
                        addr < options.eflags_addr + 4) {
                        const u32 shift =
                            8 * (addr - options.eflags_addr);
                        const u64 keep =
                            ~(options.eflags_ignore_mask >> shift) &
                            0xff;
                        if (keep == 0)
                            continue;
                        a = E::band(a, E::constant(8, keep));
                        b = E::band(b, E::constant(8, keep));
                    }
                    ++result.bytes_compared;
                    if (ir::Expr::equal(a, b)) {
                        ++result.bytes_structural;
                        continue;
                    }
                    diffs.emplace_back(addr, E::ne(a, b));
                }
                if (diffs.empty())
                    return;

                // One query per pair: can any byte differ?
                ir::ExprRef any = diffs.front().second;
                for (std::size_t i = 1; i < diffs.size(); ++i)
                    any = E::lor(any, diffs[i].second);
                std::vector<ir::ExprRef> conds = p.conjuncts;
                conds.insert(conds.end(),
                             qinfo.path_condition.begin(),
                             qinfo.path_condition.end());
                for (const ir::ExprRef &pre : options.preconditions)
                    conds.push_back(pre);
                conds.push_back(any);
                ++result.solver_queries;
                if (solver.check(conds) != solver::CheckResult::Sat)
                    return;

                EquivCounterexample cx;
                cx.original_path = p.index;
                cx.optimized_path = qinfo.index;
                for (const ir::ExprRef &var : pool.all()) {
                    cx.assignment.set(var->var_id(),
                                      solver.model_value(var));
                }
                cx.addr = diffs.front().first;
                for (const auto &[addr, ne] : diffs) {
                    if (cx.assignment.eval(ne) != 0) {
                        cx.addr = addr;
                        break;
                    }
                }
                result.counterexample = std::move(cx);
                mismatch = true;
            });
        result.optimized_paths += q_count;
        if (result.counterexample.has_value())
            break;
        if (!qstats.complete || qstats.deadline_expired)
            all_proven = false;
        if (q_count == 0) {
            if (qstats.complete && !qstats.deadline_expired) {
                // Nothing completes where the original did: a fault-
                // behavior mismatch witnessed by the original's model.
                EquivCounterexample cx;
                cx.missing_path = true;
                cx.original_path = p.index;
                cx.assignment = p.assignment;
                result.counterexample = std::move(cx);
                break;
            }
            all_proven = false;
        }
    }

    result.equivalent = !result.counterexample.has_value();
    result.proven = result.equivalent && all_proven;
    return result;
}

} // namespace pokeemu::analysis
