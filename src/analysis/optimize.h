/**
 * @file
 * IR-to-IR optimizer over semantics programs.
 *
 * optimize_program() runs a small pass pipeline to a fixpoint:
 *
 *  - const-branch folding: a CJmp whose condition is constant, or that
 *    the pure-mode dataflow facts (dataflow.h) decide for every
 *    initial state, becomes a Jmp; a decided-true or constant-true
 *    Assume is dropped (a decided-false one is *kept* — it carries the
 *    program's fault behavior). Because the engine mines Assume
 *    statements into its predicate environment, downstream decisions
 *    inherit assume-implied strengthening for free.
 *  - constant-address strengthening: a Load/Store address the facts
 *    prove constant on every path is rewritten to the literal,
 *    removing temp uses and the runtime concretization.
 *  - unreachable-code removal over the rebuilt CFG.
 *  - copy propagation / forward substitution through the folding E::
 *    factories: leaf right-hand sides (Const/Var/Temp) propagate to
 *    every eligible use; a single-use pure Assign is inlined into its
 *    use. A definition in a cycle-tainted block (dataflow.h) is only
 *    propagated within its own block — temps are statically single-
 *    assignment but dynamically reassigned in loops, so cross-block
 *    substitution is sound only where the defining block executes at
 *    most once per run.
 *  - dead-code elimination via the shared liveness fixpoints
 *    (liveness.h): dead Assigns, dead *constant-address* Loads (a
 *    symbolic load concretizes its address, which is observable to
 *    exploration, so it stays), and dead constant-address Stores.
 *    Comment statements are dropped altogether.
 *  - jump threading and fall-through cleanup.
 *
 * Soundness: every rewrite preserves the program's input/output
 * behavior — final memory state, halt code, and Assume-failure
 * behavior — for *all* initial states, because the dataflow facts are
 * computed in pure mode (fresh variables for every initial byte, no
 * preconditions). Path *structure* is not preserved: the optimized
 * program generally has fewer branches and concretization points, so
 * it must not be used where the decision-tree shape or the seeded
 * exploration stream matters (see OptMode). equiv.h provides the
 * matching translation validator that proves the equivalence per
 * program with the solver.
 */
#ifndef POKEEMU_ANALYSIS_OPTIMIZE_H
#define POKEEMU_ANALYSIS_OPTIMIZE_H

#include "analysis/cfg.h"
#include "ir/stmt.h"

namespace pokeemu::analysis {

/**
 * How consumers run optimized IR (threaded from the campaign driver
 * down through pokeemu::PipelineOptions, explore::StateExploreOptions
 * and hifi::SemanticsOptions):
 *
 *  - Off: every consumer interprets the original builder output.
 *  - On: concrete replay (the hifi backend) and standalone
 *    explorations run the optimized program. Stage-2 pipeline
 *    exploration always stays on the original IR so the decision
 *    tree, the seeded rng stream and the concretization choices —
 *    and therefore the generated tests — are bit-identical to Off.
 *  - Validated: like On, but every (original, optimized) pair is
 *    first proven equivalent by the translation validator (equiv.h);
 *    a counterexample quarantines the unit and replay falls back to
 *    the original program.
 */
enum class OptMode : u8 { Off, On, Validated };

/** Printable mode name, e.g. "validated". */
const char *opt_mode_name(OptMode mode);

/** Knobs for one optimization run. */
struct OptConfig
{
    /**
     * Pass-pipeline iterations. Each round runs every pass once; the
     * pipeline stops early when a round changes nothing. Semantics
     * programs settle in two or three rounds.
     */
    unsigned max_rounds = 4;
};

/** What one optimization run did. */
struct OptStats
{
    u64 stmts_before = 0;     ///< All statements, Comments included.
    u64 stmts_after = 0;
    u64 exec_before = 0;      ///< Non-Comment statements.
    u64 exec_after = 0;
    u64 branches_folded = 0;  ///< CJmp -> Jmp rewrites.
    u64 assumes_dropped = 0;  ///< Decided/constant-true Assumes.
    u64 addrs_strengthened = 0; ///< Load/Store addrs made literal.
    u64 copies_propagated = 0;  ///< Uses replaced by a def's rhs.
    u64 dead_assigns = 0;
    u64 dead_loads = 0;       ///< Constant-address only.
    u64 dead_stores = 0;
    u64 unreachable_stmts = 0;
    u64 jumps_threaded = 0;   ///< Retargeted or dropped jumps.
    unsigned rounds = 0;      ///< Rounds that ran (incl. the no-op).

    /** Executable-statement reduction in [0, 1]. */
    double reduction() const
    {
        return exec_before == 0
            ? 0.0
            : 1.0 - static_cast<double>(exec_after) /
                    static_cast<double>(exec_before);
    }
};

/** An optimized program plus the accounting for reports. */
struct OptResult
{
    ir::Program program;
    OptStats stats;
};

/**
 * Optimize @p program. Precondition: verifier-clean (run_pipeline
 * reports no errors) — semantics builder output qualifies. The result
 * is verifier-clean again and equivalent to the input for every
 * initial state; `name` is preserved.
 */
OptResult optimize_program(const ir::Program &program,
                           const OptConfig &config = {});

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_OPTIMIZE_H
