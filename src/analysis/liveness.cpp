#include "analysis/liveness.h"

#include <set>

#include "analysis/walk.h"
#include "ir/expr.h"

namespace pokeemu::analysis {

using ir::StmtKind;

namespace {

/**
 * Byte-liveness abstract value. live(a) = all ? !bytes.count(a)
 * : bytes.count(a) — the set holds exceptions (dead bytes) in the
 * `all` regime, live bytes otherwise. Both sets only ever hold
 * addresses named by a constant-address access, so they stay small.
 */
struct ByteLive
{
    bool all = false;
    std::set<u64> bytes;

    bool live(u64 a) const
    {
        return all ? bytes.count(a) == 0 : bytes.count(a) != 0;
    }
    void gen(u64 a)
    {
        if (all)
            bytes.erase(a);
        else
            bytes.insert(a);
    }
    void gen_all()
    {
        all = true;
        bytes.clear();
    }
    void kill(u64 a)
    {
        if (all)
            bytes.insert(a);
        else
            bytes.erase(a);
    }
    bool operator==(const ByteLive &o) const
    {
        return all == o.all && bytes == o.bytes;
    }
};

ByteLive
join_live(const ByteLive &x, const ByteLive &y)
{
    ByteLive r;
    if (x.all && y.all) {
        r.all = true; // Dead only where both sides are dead.
        for (const u64 a : x.bytes) {
            if (y.bytes.count(a))
                r.bytes.insert(a);
        }
    } else if (x.all || y.all) {
        const ByteLive &dead_side = x.all ? x : y;
        const ByteLive &live_side = x.all ? y : x;
        r.all = true;
        for (const u64 a : dead_side.bytes) {
            if (!live_side.live(a))
                r.bytes.insert(a);
        }
    } else {
        r.bytes = x.bytes;
        r.bytes.insert(y.bytes.begin(), y.bytes.end());
    }
    return r;
}

} // namespace

LivenessResult
compute_liveness(const ir::Program &program, const Cfg &cfg)
{
    const u32 num_temps = program.num_temps();
    const u32 nb = cfg.num_blocks();
    LivenessResult result;
    result.def_live.assign(program.stmts.size(), true);
    result.store_dead.assign(program.stmts.size(), false);

    // Temp liveness to a fixpoint: live_out[b] is the union of the
    // successors' live_in, and the transfer walks the block backward.
    std::vector<std::vector<bool>> live_in(
        nb, std::vector<bool>(num_temps, false));
    const auto block_live_in = [&](BlockId b) {
        const BasicBlock &block = cfg.blocks()[b];
        std::vector<bool> live(num_temps, false);
        for (const BlockId s : block.succs) {
            for (u32 t = 0; t < num_temps; ++t)
                live[t] = live[t] || live_in[s][t];
        }
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            const s64 def = stmt_def(s);
            if (def >= 0 && def < static_cast<s64>(num_temps))
                live[static_cast<u32>(def)] = false;
            for_each_stmt_use(s, [&](u32 t, unsigned) {
                if (t < num_temps)
                    live[t] = true;
            });
        }
        return live;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        // Postorder (successors before predecessors) converges fastest
        // for a backward problem.
        const auto &rpo = cfg.reverse_postorder();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            std::vector<bool> next = block_live_in(*it);
            if (next != live_in[*it]) {
                live_in[*it] = std::move(next);
                changed = true;
            }
        }
    }
    for (const BlockId b : cfg.reverse_postorder()) {
        const BasicBlock &block = cfg.blocks()[b];
        std::vector<bool> live(num_temps, false);
        for (const BlockId s : block.succs) {
            for (u32 t = 0; t < num_temps; ++t)
                live[t] = live[t] || live_in[s][t];
        }
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            const s64 def = stmt_def(s);
            if (def >= 0 && def < static_cast<s64>(num_temps)) {
                result.def_live[i] = live[static_cast<u32>(def)];
                live[static_cast<u32>(def)] = false;
            }
            for_each_stmt_use(s, [&](u32 t, unsigned) {
                if (t < num_temps)
                    live[t] = true;
            });
        }
    }

    // Byte liveness at constant addresses, same shape.
    std::vector<ByteLive> mem_live_in(nb);
    const auto block_mem_live = [&](BlockId b, bool record) {
        const BasicBlock &block = cfg.blocks()[b];
        ByteLive live;
        if (block.succs.empty()) {
            // Exit block: a trailing Halt gens all below; a program
            // falling off the end is treated the same, conservatively.
            live.gen_all();
        }
        for (const BlockId s : block.succs)
            live = join_live(live, mem_live_in[s]);
        for (u32 i = block.end; i-- > block.first;) {
            const ir::Stmt &s = program.stmts[i];
            if (s.kind == StmtKind::Halt) {
                live.gen_all();
            } else if (s.kind == StmtKind::Load) {
                if (s.addr && s.addr->is_const()) {
                    for (unsigned k = 0; k < s.size; ++k)
                        live.gen(s.addr->value() + k);
                } else {
                    live.gen_all();
                }
            } else if (s.kind == StmtKind::Store) {
                if (!s.addr || !s.addr->is_const())
                    continue;
                const u64 lo = s.addr->value();
                bool any_live = false;
                for (unsigned k = 0; k < s.size; ++k)
                    any_live = any_live || live.live(lo + k);
                if (record && !any_live)
                    result.store_dead[i] = true;
                for (unsigned k = 0; k < s.size; ++k)
                    live.kill(lo + k);
            }
        }
        return live;
    };
    changed = true;
    while (changed) {
        changed = false;
        const auto &rpo = cfg.reverse_postorder();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            ByteLive next = block_mem_live(*it, false);
            if (!(next == mem_live_in[*it])) {
                mem_live_in[*it] = std::move(next);
                changed = true;
            }
        }
    }
    for (const BlockId b : cfg.reverse_postorder())
        block_mem_live(b, true);

    return result;
}

} // namespace pokeemu::analysis
