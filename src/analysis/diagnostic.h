/**
 * @file
 * Structured findings produced by the IR static-analysis passes.
 *
 * Every verifier check and lint pass reports through a Report so that
 * callers (unit tests, the ir_lint driver, the explorer's fail-fast
 * hook) can distinguish severities programmatically instead of parsing
 * panic strings. Error-severity findings mean the program is malformed
 * and must not be executed; warnings flag likely-unintended but
 * executable constructs; notes are advisory.
 */
#ifndef POKEEMU_ANALYSIS_DIAGNOSTIC_H
#define POKEEMU_ANALYSIS_DIAGNOSTIC_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace pokeemu::analysis {

enum class Severity : u8 { Note, Warning, Error };

/** Printable severity name, e.g. "error". */
const char *severity_name(Severity severity);

/** Sentinel stmt_index for program-level findings (no one statement). */
constexpr u32 kNoStmt = ~u32{0};

/** One finding from one pass; see file comment for severity meaning. */
struct Diagnostic
{
    Severity severity = Severity::Note;
    u32 stmt_index = kNoStmt; ///< Statement the finding anchors to.
    std::string pass;         ///< Emitting pass, e.g. "verifier".
    std::string message;

    /** Render as "error: [verifier] stmt 3: ...". */
    std::string to_string() const;
};

/** The findings of a pass pipeline over one program. */
class Report
{
  public:
    void add(Severity severity, u32 stmt_index, std::string pass,
             std::string message)
    {
        diagnostics_.push_back({severity, stmt_index, std::move(pass),
                                std::move(message)});
    }

    void error(u32 stmt_index, std::string pass, std::string message)
    {
        add(Severity::Error, stmt_index, std::move(pass),
            std::move(message));
    }

    void warning(u32 stmt_index, std::string pass, std::string message)
    {
        add(Severity::Warning, stmt_index, std::move(pass),
            std::move(message));
    }

    void note(u32 stmt_index, std::string pass, std::string message)
    {
        add(Severity::Note, stmt_index, std::move(pass),
            std::move(message));
    }

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    bool empty() const { return diagnostics_.empty(); }

    std::size_t count(Severity severity) const;

    bool has_errors() const { return count(Severity::Error) != 0; }

    /** Append another report's findings (pipeline accumulation). */
    void merge(const Report &other);

    /**
     * Stable-sort the findings into the canonical emission order:
     * by statement (program-level findings last), then pass name,
     * then severity (errors first), then message. Every consumer that
     * serializes a report (ir_lint --json, ir_equiv --json, pipeline
     * reports) sorts first so the output is byte-stable regardless of
     * which pass order produced the findings.
     */
    void sort();

    /** All findings, one per line. Empty string when clean. */
    std::string to_string() const;

  private:
    std::vector<Diagnostic> diagnostics_;
};

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_DIAGNOSTIC_H
