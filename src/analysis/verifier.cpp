#include "analysis/verifier.h"

#include <unordered_set>

#include "analysis/cfg.h"
#include "analysis/walk.h"
#include "ir/expr.h"

namespace pokeemu::analysis {

using ir::BinOpKind;
using ir::CastKind;
using ir::Expr;
using ir::ExprKind;
using ir::ExprRef;
using ir::StmtKind;

namespace {

constexpr const char *kPass = "verifier";

bool
width_in_range(unsigned width)
{
    return width >= 1 && width <= 64;
}

/**
 * Recursive width/shape checker for one expression DAG. Shared nodes
 * are checked once per program (the memo persists across statements);
 * findings anchor to the first statement that referenced the node.
 */
class ExprChecker
{
  public:
    ExprChecker(const ir::Program &program, Report &report)
        : program_(program), report_(report)
    {
    }

    void check(const ExprRef &expr, u32 stmt_index)
    {
        if (!expr)
            return;
        if (!seen_.insert(expr.get()).second)
            return;
        const Expr &e = *expr;
        if (!width_in_range(e.width())) {
            report_.error(stmt_index, kPass,
                          "expression width " +
                              std::to_string(e.width()) +
                              " outside [1, 64]");
            return;
        }
        switch (e.kind()) {
          case ExprKind::Const:
            if (e.value() != truncate(e.value(), e.width())) {
                report_.error(stmt_index, kPass,
                              "constant value does not fit its width");
            }
            break;
          case ExprKind::Var:
            break;
          case ExprKind::Temp:
            if (e.temp_id() >= program_.num_temps()) {
                report_.error(stmt_index, kPass,
                              "reference to undeclared temp t" +
                                  std::to_string(e.temp_id()));
            } else if (e.width() !=
                       program_.temp_width[e.temp_id()]) {
                report_.error(
                    stmt_index, kPass,
                    "temp t" + std::to_string(e.temp_id()) +
                        " referenced at width " +
                        std::to_string(e.width()) + " but declared " +
                        std::to_string(
                            program_.temp_width[e.temp_id()]));
            }
            break;
          case ExprKind::UnOp:
            if (!require(e.a(), stmt_index, "unop operand"))
                break;
            if (e.width() != e.a()->width()) {
                mismatch(stmt_index, ir::unop_name(e.unop()),
                         e.width(), e.a()->width());
            }
            check(e.a(), stmt_index);
            break;
          case ExprKind::BinOp:
            check_binop(e, stmt_index);
            break;
          case ExprKind::Cast:
            check_cast(e, stmt_index);
            break;
          case ExprKind::Ite:
            if (!require(e.a(), stmt_index, "ite condition") ||
                !require(e.b(), stmt_index, "ite then-value") ||
                !require(e.c(), stmt_index, "ite else-value")) {
                break;
            }
            if (e.a()->width() != 1) {
                report_.error(stmt_index, kPass,
                              "ite condition must be 1 bit wide, got " +
                                  std::to_string(e.a()->width()));
            }
            if (e.b()->width() != e.c()->width() ||
                e.width() != e.b()->width()) {
                report_.error(
                    stmt_index, kPass,
                    "ite arm widths " + std::to_string(e.b()->width()) +
                        "/" + std::to_string(e.c()->width()) +
                        " must both equal result width " +
                        std::to_string(e.width()));
            }
            check(e.a(), stmt_index);
            check(e.b(), stmt_index);
            check(e.c(), stmt_index);
            break;
        }
    }

  private:
    bool require(const ExprRef &operand, u32 stmt_index,
                 const char *what)
    {
        if (operand)
            return true;
        report_.error(stmt_index, kPass,
                      std::string("missing ") + what);
        return false;
    }

    void mismatch(u32 stmt_index, const char *op, unsigned result,
                  unsigned operand)
    {
        report_.error(stmt_index, kPass,
                      std::string(op) + ": result width " +
                          std::to_string(result) +
                          " inconsistent with operand width " +
                          std::to_string(operand));
    }

    void check_binop(const Expr &e, u32 stmt_index)
    {
        if (!require(e.a(), stmt_index, "binop left operand") ||
            !require(e.b(), stmt_index, "binop right operand")) {
            return;
        }
        const unsigned aw = e.a()->width();
        const unsigned bw = e.b()->width();
        const char *op = ir::binop_name(e.binop());
        if (e.binop() == BinOpKind::Concat) {
            if (aw + bw > 64 || e.width() != aw + bw) {
                report_.error(
                    stmt_index, kPass,
                    std::string(op) + ": result width " +
                        std::to_string(e.width()) +
                        " must be the sum of operand widths " +
                        std::to_string(aw) + "+" + std::to_string(bw));
            }
        } else if (aw != bw) {
            report_.error(stmt_index, kPass,
                          std::string(op) + ": operand widths " +
                              std::to_string(aw) + " and " +
                              std::to_string(bw) + " differ");
        } else if (ir::is_comparison(e.binop())) {
            if (e.width() != 1) {
                report_.error(stmt_index, kPass,
                              std::string(op) +
                                  ": comparison result must be 1 bit "
                                  "wide, got " +
                                  std::to_string(e.width()));
            }
        } else if (e.width() != aw) {
            mismatch(stmt_index, op, e.width(), aw);
        }
        check(e.a(), stmt_index);
        check(e.b(), stmt_index);
    }

    void check_cast(const Expr &e, u32 stmt_index)
    {
        if (!require(e.a(), stmt_index, "cast operand"))
            return;
        const unsigned aw = e.a()->width();
        switch (e.cast()) {
          case CastKind::ZExt:
          case CastKind::SExt:
            if (e.width() < aw) {
                report_.error(stmt_index, kPass,
                              "extension narrows: result width " +
                                  std::to_string(e.width()) +
                                  " < operand width " +
                                  std::to_string(aw));
            }
            break;
          case CastKind::Extract:
            if (e.extract_lo() + e.width() > aw) {
                report_.error(
                    stmt_index, kPass,
                    "extract [" + std::to_string(e.extract_lo()) +
                        ", " +
                        std::to_string(e.extract_lo() + e.width()) +
                        ") exceeds operand width " +
                        std::to_string(aw));
            }
            break;
        }
        check(e.a(), stmt_index);
    }

    const ir::Program &program_;
    Report &report_;
    std::unordered_set<const Expr *> seen_;
};

/** Label/operand checks for one statement; expr trees via @p exprs. */
void
check_stmt(const ir::Program &program, u32 i, ExprChecker &exprs,
           Report &report)
{
    const ir::Stmt &s = program.stmts[i];
    const auto check_temp_dest = [&]() {
        if (s.temp >= program.num_temps()) {
            report.error(i, kPass,
                         "destination temp t" + std::to_string(s.temp) +
                             " is not declared");
            return false;
        }
        return true;
    };
    const auto check_addr = [&]() {
        if (!s.addr) {
            report.error(i, kPass, "missing address expression");
        } else if (s.addr->width() != 32) {
            report.error(i, kPass,
                         "address must be 32 bits wide, got " +
                             std::to_string(s.addr->width()));
        }
        if (s.size != 1 && s.size != 2 && s.size != 4) {
            report.error(i, kPass,
                         "access size " + std::to_string(s.size) +
                             " not in {1, 2, 4}");
            return false;
        }
        return true;
    };
    const auto check_label = [&](ir::Label l, const char *what) {
        if (l >= program.num_labels()) {
            report.error(i, kPass,
                         std::string(what) + " label L" +
                             std::to_string(l) + " is not declared");
        }
    };
    const auto check_cond_width = [&](const char *what) {
        if (!s.expr) {
            report.error(i, kPass,
                         std::string("missing ") + what +
                             " condition");
        } else if (s.expr->width() != 1) {
            report.error(i, kPass,
                         std::string(what) +
                             " condition must be 1 bit wide, got " +
                             std::to_string(s.expr->width()));
        }
    };

    switch (s.kind) {
      case StmtKind::Assign:
        if (!s.expr) {
            report.error(i, kPass, "missing assign value");
        } else if (check_temp_dest() &&
                   s.expr->width() != program.temp_width[s.temp]) {
            report.error(i, kPass,
                         "assign of " +
                             std::to_string(s.expr->width()) +
                             "-bit value to t" + std::to_string(s.temp) +
                             " declared " +
                             std::to_string(program.temp_width[s.temp]) +
                             " bits wide");
        }
        break;
      case StmtKind::Load:
        if (check_addr() && check_temp_dest() &&
            program.temp_width[s.temp] != s.size * 8) {
            report.error(i, kPass,
                         "load of " + std::to_string(s.size) +
                             " bytes into t" + std::to_string(s.temp) +
                             " declared " +
                             std::to_string(program.temp_width[s.temp]) +
                             " bits wide");
        }
        break;
      case StmtKind::Store:
        if (check_addr()) {
            if (!s.expr) {
                report.error(i, kPass, "missing store value");
            } else if (s.expr->width() != s.size * 8) {
                report.error(i, kPass,
                             "store of " + std::to_string(s.size) +
                                 " bytes with " +
                                 std::to_string(s.expr->width()) +
                                 "-bit value");
            }
        }
        break;
      case StmtKind::CJmp:
        check_cond_width("cjmp");
        check_label(s.target_true, "cjmp true-");
        check_label(s.target_false, "cjmp false-");
        break;
      case StmtKind::Jmp:
        check_label(s.target_true, "jmp");
        break;
      case StmtKind::Assume:
        check_cond_width("assume");
        break;
      case StmtKind::Halt:
        if (!s.expr) {
            report.error(i, kPass, "missing halt code");
        } else if (s.expr->width() != 32) {
            report.error(i, kPass,
                         "halt code must be 32 bits wide, got " +
                             std::to_string(s.expr->width()));
        }
        break;
      case StmtKind::Comment:
        break;
    }
    exprs.check(s.expr, i);
    exprs.check(s.addr, i);
}

/**
 * Forward must-defined dataflow over the reachable CFG: a temp use is
 * sound only when an Assign/Load dominates it on every path. Uses of
 * temps with no definition anywhere are errors; uses missing a
 * definition on only some paths are warnings (the explorer panics at
 * runtime if such a path is actually taken).
 */
void
check_def_before_use(const ir::Program &program, const Cfg &cfg,
                     Report &report)
{
    const u32 num_temps = program.num_temps();
    std::vector<bool> defined_anywhere(num_temps, false);
    for (const ir::Stmt &s : program.stmts) {
        const s64 def = stmt_def(s);
        if (def >= 0 && def < static_cast<s64>(num_temps))
            defined_anywhere[static_cast<u32>(def)] = true;
    }

    // out[b] starts all-defined (optimistic) except the entry, and the
    // meet is intersection over reachable predecessors.
    const u32 nb = cfg.num_blocks();
    std::vector<std::vector<bool>> out(
        nb, std::vector<bool>(num_temps, true));
    const auto transfer = [&](const std::vector<bool> &in, BlockId b) {
        std::vector<bool> defs = in;
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            const s64 def = stmt_def(program.stmts[i]);
            if (def >= 0 && def < static_cast<s64>(num_temps))
                defs[static_cast<u32>(def)] = true;
        }
        return defs;
    };
    const auto block_in = [&](BlockId b) {
        std::vector<bool> in(num_temps, b != cfg.entry());
        for (const BlockId p : cfg.blocks()[b].preds) {
            if (!cfg.reachable(p))
                continue;
            for (u32 t = 0; t < num_temps; ++t)
                in[t] = in[t] && out[p][t];
        }
        return in;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (const BlockId b : cfg.reverse_postorder()) {
            std::vector<bool> next = transfer(block_in(b), b);
            if (next != out[b]) {
                out[b] = std::move(next);
                changed = true;
            }
        }
    }

    // Report each temp's problem once, at its first offending use.
    std::vector<bool> reported(num_temps, false);
    for (const BlockId b : cfg.reverse_postorder()) {
        std::vector<bool> defs = block_in(b);
        const BasicBlock &block = cfg.blocks()[b];
        for (u32 i = block.first; i < block.end; ++i) {
            const ir::Stmt &s = program.stmts[i];
            for_each_stmt_use(s, [&](u32 t, unsigned) {
                if (t >= num_temps || defs[t] || reported[t])
                    return;
                reported[t] = true;
                if (!defined_anywhere[t]) {
                    report.error(i, kPass,
                                 "use of temp t" + std::to_string(t) +
                                     " which is never defined");
                } else {
                    report.warning(
                        i, kPass,
                        "temp t" + std::to_string(t) +
                            " may be used before definition "
                            "(not defined on all paths)");
                }
            });
            const s64 def = stmt_def(s);
            if (def >= 0 && def < static_cast<s64>(num_temps))
                defs[static_cast<u32>(def)] = true;
        }
    }
}

/**
 * Termination checks: no reachable block may run past the end of the
 * program, and every reachable block must have some path to a Halt
 * (otherwise the region is a guaranteed infinite loop).
 */
void
check_termination(const ir::Program &program, const Cfg &cfg,
                  Report &report)
{
    // Backward reachability from terminating blocks. A fall-off-end
    // block "terminates" for the loop check — running off the end is
    // its own, more precise error.
    const u32 nb = cfg.num_blocks();
    std::vector<bool> reaches_exit(nb, false);
    std::vector<BlockId> work;
    for (BlockId b = 0; b < nb; ++b) {
        const BasicBlock &block = cfg.blocks()[b];
        const bool halts =
            program.stmts[block.last()].kind == StmtKind::Halt;
        if (halts || block.falls_off_end) {
            reaches_exit[b] = true;
            work.push_back(b);
        }
        if (block.falls_off_end && cfg.reachable(b)) {
            report.error(block.last(), kPass,
                         "control can run past the end of the program "
                         "(missing Halt)");
        }
    }
    while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        for (const BlockId p : cfg.blocks()[b].preds) {
            if (!reaches_exit[p]) {
                reaches_exit[p] = true;
                work.push_back(p);
            }
        }
    }
    for (BlockId b = 0; b < nb; ++b) {
        if (cfg.reachable(b) && !reaches_exit[b]) {
            report.error(cfg.blocks()[b].first, kPass,
                         "no path from here to a Halt "
                         "(guaranteed infinite loop)");
        }
    }
}

} // namespace

Report
Verifier::check(const ir::Program &program)
{
    Report report;
    if (program.stmts.empty()) {
        report.error(kNoStmt, kPass, "empty program (missing Halt)");
        return report;
    }

    for (std::size_t t = 0; t < program.temp_width.size(); ++t) {
        if (!width_in_range(program.temp_width[t])) {
            report.error(kNoStmt, kPass,
                         "temp t" + std::to_string(t) +
                             " declared with width " +
                             std::to_string(program.temp_width[t]) +
                             " outside [1, 64]");
        }
    }

    bool labels_ok = true;
    for (std::size_t l = 0; l < program.label_pos.size(); ++l) {
        if (program.label_pos[l] >= program.stmts.size()) {
            report.error(kNoStmt, kPass,
                         "label L" + std::to_string(l) +
                             " is unbound or out of range (position " +
                             std::to_string(program.label_pos[l]) +
                             " of " +
                             std::to_string(program.stmts.size()) +
                             " statements)");
            labels_ok = false;
        }
    }

    ExprChecker exprs(program, report);
    bool targets_ok = true;
    for (u32 i = 0; i < program.stmts.size(); ++i) {
        const std::size_t errors_before = report.count(Severity::Error);
        check_stmt(program, i, exprs, report);
        const ir::Stmt &s = program.stmts[i];
        if ((s.kind == StmtKind::CJmp || s.kind == StmtKind::Jmp) &&
            report.count(Severity::Error) != errors_before) {
            targets_ok = false;
        }
    }

    // The CFG-based checks need every edge resolvable; with dangling
    // labels or bad jump targets the graph cannot be built.
    if (!labels_ok || !targets_ok)
        return report;
    const Cfg cfg = Cfg::build(program);
    check_termination(program, cfg, report);
    check_def_before_use(program, cfg, report);
    return report;
}

} // namespace pokeemu::analysis
