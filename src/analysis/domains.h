/**
 * @file
 * Abstract value domains for the IR dataflow engine: known-bits and
 * unsigned intervals, fused into one Fact per value.
 *
 * A Fact over-approximates the set of concrete values an expression
 * can take: bit i is *known* when every concrete value agrees on it
 * (`zeros`/`ones` masks), and every concrete value lies in the
 * unsigned interval [lo, hi]. The two views tighten each other
 * (normalize()): known leading bits bound the interval, and interval
 * bounds pin leading bits. The paper's exploration cost is dominated
 * by per-branch solver queries; a branch condition whose Fact decides
 * to a constant needs no query at all (dataflow.h).
 *
 * Soundness contract, relied on by the explorer's pruning and the
 * over-approximation property tests: for every concrete assignment
 * consistent with the FactEnv, eval_fact(e).contains(eval_expr(e)).
 */
#ifndef POKEEMU_ANALYSIS_DOMAINS_H
#define POKEEMU_ANALYSIS_DOMAINS_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace pokeemu::analysis {

/** See file comment. */
struct Fact
{
    unsigned width = 1;
    /** Bit set: that result bit is known to be 0 / known to be 1. */
    u64 zeros = 0;
    u64 ones = 0;
    /** Unsigned interval bounds, inclusive; lo <= hi unless bottom. */
    u64 lo = 0;
    u64 hi = 0;
    /** No concrete value satisfies this fact (contradiction). */
    bool bottom = false;

    /** All w-bit values. */
    static Fact top(unsigned w);
    /** Exactly @p value. */
    static Fact constant(unsigned w, u64 value);
    /** Known-bits only; interval derived by normalize(). */
    static Fact known(unsigned w, u64 zeros, u64 ones);
    /** Interval only; known bits derived by normalize(). */
    static Fact range(unsigned w, u64 lo, u64 hi);
    static Fact bot(unsigned w);

    u64 mask() const
    {
        return width >= 64 ? ~u64{0} : (u64{1} << width) - 1;
    }

    bool is_constant() const
    {
        return !bottom && lo == hi;
    }

    /** The single value (is_constant() only). */
    u64 value() const { return lo; }

    /** Decide a 1-bit fact; nullopt when both values possible. */
    std::optional<bool> decide() const;

    /** Does @p value satisfy every known bit and the interval? */
    bool contains(u64 value) const;

    /** True when no bit is known and the interval is full. */
    bool is_top() const;

    /** Least upper bound (set union over-approximation). */
    Fact join(const Fact &other) const;

    /** Greatest lower bound (set intersection; may go bottom). */
    Fact meet(const Fact &other) const;

    /**
     * Propagate between the two views until mutually consistent:
     * known bits raise lo / lower hi, and shared leading bits of
     * lo and hi become known. Detects contradictions (-> bottom).
     */
    Fact normalize() const;

    bool operator==(const Fact &other) const;

    std::string to_string() const;

    // Transfer functions. All are sound over-approximations; every
    // IR operator is covered (unhandled combinations return top).
    static Fact binop(ir::BinOpKind op, const Fact &a, const Fact &b);
    static Fact unop(ir::UnOpKind op, const Fact &a);
    static Fact zext_to(const Fact &a, unsigned width);
    static Fact sext_to(const Fact &a, unsigned width);
    static Fact extract_from(const Fact &a, unsigned lo, unsigned width);
    static Fact ite(const Fact &cond, const Fact &t, const Fact &f);
};

/**
 * Variable facts plus a per-node memo for eval_fact. The memo is keyed
 * by expression node identity (expressions are immutable and shared),
 * so repeated evaluation over a growing symbolic state stays linear.
 */
class FactEnv
{
  public:
    /** Install (meet with any existing) a fact for variable @p id. */
    void refine_var(u32 id, const Fact &fact);

    /** The installed fact, or top(@p width). */
    Fact var_fact(u32 id, unsigned width) const;

    bool has_var(u32 id) const { return vars_.find(id) != vars_.end(); }

    /**
     * Mine a 1-bit condition known to be true for variable-level
     * facts. Understands conjunctions and the comparison shapes the
     * state spec and semantics emit: eq/ne/ult/ule over a variable,
     * extract(var, ..), or band(var, const). Unrecognized shapes are
     * ignored (the predicate set in dataflow.cpp still uses them).
     */
    void assume(const ir::ExprRef &cond);

    /** Evaluate the fact of @p e under this environment (memoized). */
    Fact eval(const ir::ExprRef &e);

    std::size_t cache_size() const { return cache_.size(); }

  private:
    /** Refine `lhs == value` where lhs is a var / extract / band. */
    void assume_eq(const ir::ExprRef &lhs, u64 value);

    std::unordered_map<u32, Fact> vars_;
    std::unordered_map<const ir::Expr *, Fact> cache_;
    /** Keeps cached nodes alive so pointer keys stay valid. */
    std::vector<ir::ExprRef> pinned_;
};

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_DOMAINS_H
