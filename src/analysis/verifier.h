/**
 * @file
 * Structural well-formedness verifier for IR programs.
 *
 * The whole pipeline — symbolic exploration, test generation, and
 * cross-backend comparison — trusts the hand-written semantics
 * generators; a width mismatch or dangling jump there silently
 * corrupts every downstream result. The verifier machine-checks any
 * ir::Program before it is executed:
 *
 *  - every label is bound to a statement inside the program;
 *  - every statement is shape-correct for its kind (operand presence,
 *    Load/Store sizes 1/2/4 with 32-bit addresses, 1-bit branch and
 *    assume conditions, 32-bit halt codes);
 *  - every expression tree is width-correct for its operator
 *    (BinOpKind/UnOpKind/CastKind/Ite rules), and every Temp
 *    reference matches Program::temp_width;
 *  - every temp is defined (by an Assign or Load) on every path
 *    before it is used — never-defined uses are errors, uses missing
 *    a definition on only some paths are warnings;
 *  - control cannot run past the end of the program, and every
 *    reachable statement can reach a Halt (a reachable region with no
 *    path to Halt is a guaranteed infinite loop).
 *
 * Error severity means "do not execute this program": the explorer
 * checks it in its constructor and fails fast (explorer.cpp), and
 * tools/ir_lint gates its exit status on it.
 */
#ifndef POKEEMU_ANALYSIS_VERIFIER_H
#define POKEEMU_ANALYSIS_VERIFIER_H

#include "analysis/diagnostic.h"
#include "ir/stmt.h"

namespace pokeemu::analysis {

/** See file comment. */
class Verifier
{
  public:
    /** Run every check on @p program and collect the findings. */
    static Report check(const ir::Program &program);
};

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_VERIFIER_H
