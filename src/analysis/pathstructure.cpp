#include "analysis/pathstructure.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace pokeemu::analysis {

namespace {

u64
sat_add(u64 a, u64 b)
{
    return a >= kPathCountCap - b ? kPathCountCap : a + b;
}

u64
sat_mul(u64 a, u64 b)
{
    if (a == 0 || b == 0)
        return 0;
    return a >= kPathCountCap / b ? kPathCountCap : a * b;
}

/**
 * Cooper-Harvey-Kennedy iterative dominators over an arbitrary
 * pred/order representation, so the same routine serves dominators
 * (CFG, entry, CFG preds) and post-dominators (reverse graph rooted at
 * the virtual exit, whose "preds" are the original successors).
 *
 * @p rpo       reverse postorder of the graph, root first.
 * @p po_num    postorder number per node (higher = earlier in rpo);
 *              nodes absent from the traversal keep kNoBlock idoms.
 * @p preds     predecessor list per node.
 * Returns idom per node; idom[root] == root.
 */
std::vector<BlockId>
chk_dominators(u32 num_nodes, const std::vector<BlockId> &rpo,
               const std::vector<u32> &po_num,
               const std::vector<std::vector<BlockId>> &preds)
{
    std::vector<BlockId> idom(num_nodes, kNoBlock);
    if (rpo.empty())
        return idom;
    const BlockId root = rpo[0];
    idom[root] = root;

    const auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (po_num[a] < po_num[b])
                a = idom[a];
            while (po_num[b] < po_num[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); ++i) {
            const BlockId b = rpo[i];
            BlockId new_idom = kNoBlock;
            for (BlockId p : preds[b]) {
                if (idom[p] == kNoBlock)
                    continue; // Not yet processed / unreachable.
                new_idom = new_idom == kNoBlock ? p
                                                : intersect(p, new_idom);
            }
            assert(new_idom != kNoBlock &&
                   "rpo node with no processed pred");
            if (idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

/** Tree depth per node from an idom array (root depth 0). */
std::vector<u32>
tree_depths(const std::vector<BlockId> &idom, BlockId root)
{
    std::vector<u32> depth(idom.size(), 0);
    // idom chains are acyclic and end at the root; resolve each node
    // by walking up, memoizing nothing — chains are short in practice
    // and this runs once per unit.
    for (BlockId b = 0; b < idom.size(); ++b) {
        if (idom[b] == kNoBlock || b == root)
            continue;
        u32 d = 0;
        BlockId cur = b;
        while (cur != root) {
            cur = idom[cur];
            ++d;
        }
        depth[b] = d;
    }
    return depth;
}

} // namespace

PathStructure
PathStructure::build(const ir::Program &program, const Cfg &cfg,
                     const ProgramFacts *facts)
{
    PathStructure ps;
    const u32 n = cfg.num_blocks();
    ps.num_blocks_ = n;
    ps.entry_ = cfg.entry();

    // --- Infeasible-edge pruning from the dataflow facts. An edge is
    // pruned when the facts prove no concrete execution traverses it:
    // either endpoint is dataflow-unreachable, or it is the not-taken
    // side of a decided CJmp (only when the two targets are distinct
    // blocks — Cfg dedups same-target successors into one edge, which
    // both decisions keep).
    const bool have_facts = facts != nullptr && facts->analyzed;
    ps.pruned_.resize(n);
    ps.back_edge_.resize(n);
    for (BlockId b = 0; b < n; ++b) {
        const BasicBlock &block = cfg.blocks()[b];
        ps.pruned_[b].assign(block.succs.size(), false);
        ps.back_edge_[b].assign(block.succs.size(), false);
        if (!have_facts)
            continue;
        const bool b_dead = !facts->block_reachable[b];
        for (std::size_t s = 0; s < block.succs.size(); ++s) {
            if (b_dead || !facts->block_reachable[block.succs[s]])
                ps.pruned_[b][s] = true;
        }
        // A decided CJmp contributes only its taken edge. Cfg dedups
        // same-target successors into one edge, which both decisions
        // keep, so only distinct targets prune.
        const ir::Stmt &last = program.stmts[block.last()];
        if (last.kind != ir::StmtKind::CJmp)
            continue;
        const Decision d = facts->decision(block.last());
        if (d == Decision::Unknown)
            continue;
        const BlockId t_true =
            cfg.block_of(program.label_pos[last.target_true]);
        const BlockId t_false =
            cfg.block_of(program.label_pos[last.target_false]);
        if (t_true == t_false)
            continue;
        const BlockId dead =
            d == Decision::AlwaysTrue ? t_false : t_true;
        for (std::size_t s = 0; s < block.succs.size(); ++s) {
            if (block.succs[s] == dead)
                ps.pruned_[b][s] = true;
        }
    }

    ps.paths_in_.assign(n, 0);
    ps.paths_out_.assign(n, 0);
    ps.chain_of_.assign(n, kNoChain);
    ps.chain_next_.assign(n, kNoBlock);

    // --- Dominators over the full CFG (pruning is a feasibility
    // refinement; dominance is a graph property the lint passes need
    // on unanalyzed programs too).
    {
        const std::vector<BlockId> &rpo = cfg.reverse_postorder();
        std::vector<u32> po_num(n, 0);
        for (std::size_t i = 0; i < rpo.size(); ++i)
            po_num[rpo[i]] = static_cast<u32>(rpo.size() - 1 - i);
        std::vector<std::vector<BlockId>> preds(n);
        for (BlockId b = 0; b < n; ++b)
            preds[b] = cfg.blocks()[b].preds;
        ps.idom_ = chk_dominators(n, rpo, po_num, preds);
        ps.dom_depth_ = tree_depths(ps.idom_, cfg.entry());
    }

    // --- Post-dominators: dominators of the reverse graph rooted at a
    // virtual exit (internal node id n) that joins every exit block —
    // blocks with no successors (Halt) or whose control falls off the
    // end (the verifier rejects the latter, but lint runs pre-verify
    // shapes too).
    {
        const u32 vexit = n;
        std::vector<std::vector<BlockId>> rsuccs(n + 1);
        std::vector<std::vector<BlockId>> rpreds(n + 1);
        for (BlockId b = 0; b < n; ++b) {
            const BasicBlock &block = cfg.blocks()[b];
            if (block.succs.empty() || block.falls_off_end) {
                rsuccs[vexit].push_back(b);
                rpreds[b].push_back(vexit);
            }
            for (BlockId s : block.succs) {
                rsuccs[s].push_back(b);
                rpreds[b].push_back(s);
            }
        }
        // Iterative DFS postorder of the reverse graph from vexit.
        std::vector<BlockId> postorder;
        std::vector<u8> state(n + 1, 0); // 0 new, 1 open, 2 done.
        std::vector<std::pair<BlockId, std::size_t>> stack;
        stack.emplace_back(vexit, 0);
        state[vexit] = 1;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            if (next < rsuccs[node].size()) {
                const BlockId s = rsuccs[node][next++];
                if (state[s] == 0) {
                    state[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                state[node] = 2;
                postorder.push_back(node);
                stack.pop_back();
            }
        }
        std::vector<BlockId> rpo(postorder.rbegin(), postorder.rend());
        std::vector<u32> po_num(n + 1, 0);
        for (std::size_t i = 0; i < postorder.size(); ++i)
            po_num[postorder[i]] = static_cast<u32>(i);
        std::vector<BlockId> ipdom =
            chk_dominators(n + 1, rpo, po_num, rpreds);
        std::vector<u32> depth = tree_depths(ipdom, vexit);
        ps.ipdom_.assign(n, kNoBlock);
        ps.pdom_depth_.assign(n, 0);
        for (BlockId b = 0; b < n; ++b) {
            if (ipdom[b] == kNoBlock)
                continue;
            ps.ipdom_[b] = ipdom[b] == vexit ? kVirtualExit : ipdom[b];
            ps.pdom_depth_[b] = depth[b];
        }
    }

    // --- DAG-ification: DFS over non-pruned edges from the entry;
    // an edge into a block on the open DFS stack is a back edge. The
    // DFS postorder, reversed, topologically orders the remaining DAG.
    std::vector<BlockId> topo; // Reverse postorder over the DAG.
    {
        std::vector<u8> state(n, 0); // 0 new, 1 on stack, 2 done.
        std::vector<std::pair<BlockId, std::size_t>> stack;
        std::vector<BlockId> postorder;
        stack.emplace_back(cfg.entry(), 0);
        state[cfg.entry()] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            const std::vector<BlockId> &succs = cfg.blocks()[b].succs;
            if (next < succs.size()) {
                const std::size_t s = next++;
                if (ps.pruned_[b][s])
                    continue;
                const BlockId to = succs[s];
                if (state[to] == 1) {
                    ps.back_edge_[b][s] = true;
                } else if (state[to] == 0) {
                    state[to] = 1;
                    stack.emplace_back(to, 0);
                }
            } else {
                state[b] = 2;
                postorder.push_back(b);
                stack.pop_back();
            }
        }
        topo.assign(postorder.rbegin(), postorder.rend());
    }

    const auto dag_edge = [&](BlockId b, std::size_t s) {
        return !ps.pruned_[b][s] && !ps.back_edge_[b][s];
    };

    // --- Feasible-path counts over the DAG, saturating.
    ps.paths_in_[cfg.entry()] = 1;
    for (const BlockId b : topo) {
        const std::vector<BlockId> &succs = cfg.blocks()[b].succs;
        for (std::size_t s = 0; s < succs.size(); ++s) {
            if (dag_edge(b, s))
                ps.paths_in_[succs[s]] =
                    sat_add(ps.paths_in_[succs[s]], ps.paths_in_[b]);
        }
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const BlockId b = *it;
        const BasicBlock &block = cfg.blocks()[b];
        if (block.succs.empty()) {
            ps.paths_out_[b] = 1; // Halt block: one (empty) suffix.
            continue;
        }
        for (std::size_t s = 0; s < block.succs.size(); ++s) {
            if (dag_edge(b, s))
                ps.paths_out_[b] = sat_add(
                    ps.paths_out_[b], ps.paths_out_[block.succs[s]]);
        }
    }

    // --- Minimal path cover: maximum bipartite matching (Kuhn) on the
    // DAG edge relation. match_next[u] = the unique chain successor of
    // u, match_prev[v] = the unique chain predecessor of v; every
    // unmatched-on-the-left block starts a chain, so the cover has
    // |blocks| - |matching| chains — minimal by König's theorem.
    std::vector<BlockId> match_next(n, kNoBlock);
    std::vector<BlockId> match_prev(n, kNoBlock);
    {
        std::vector<u32> visited(n, 0);
        u32 round = 0;
        // Recursive augmenting search, iteratively: try_kuhn(u) looks
        // for an augmenting path from u through alternating edges.
        std::function<bool(BlockId)> try_kuhn = [&](BlockId u) -> bool {
            const std::vector<BlockId> &succs = cfg.blocks()[u].succs;
            for (std::size_t s = 0; s < succs.size(); ++s) {
                if (!dag_edge(u, s))
                    continue;
                const BlockId v = succs[s];
                if (visited[v] == round)
                    continue;
                visited[v] = round;
                if (match_prev[v] == kNoBlock ||
                    try_kuhn(match_prev[v])) {
                    match_next[u] = v;
                    match_prev[v] = u;
                    return true;
                }
            }
            return false;
        };
        for (const BlockId u : topo) {
            ++round;
            try_kuhn(u);
        }
    }
    for (const BlockId b : topo) {
        if (match_prev[b] != kNoBlock)
            continue; // Interior of some chain.
        CoverChain chain;
        const u32 id = static_cast<u32>(ps.chains_.size());
        for (BlockId cur = b; cur != kNoBlock; cur = match_next[cur]) {
            ps.chain_of_[cur] = id;
            ps.chain_next_[cur] = match_next[cur];
            chain.blocks.push_back(cur);
        }
        ps.chains_.push_back(std::move(chain));
    }

    // --- Per-block reachable-chain bitsets over non-pruned edges,
    // back edges included (a loop genuinely re-enters structure).
    // Fixpoint: reverse-topo sweep resolves forward edges in one pass;
    // repeat until back-edge contributions stabilize.
    ps.chain_words_ = (ps.chains_.size() + 63) / 64;
    ps.reach_chains_.assign(n, {});
    for (const BlockId b : topo) {
        ps.reach_chains_[b].assign(ps.chain_words_, 0);
        const u32 c = ps.chain_of_[b];
        ps.reach_chains_[b][c / 64] |= u64{1} << (c % 64);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            const BlockId b = *it;
            const std::vector<BlockId> &succs = cfg.blocks()[b].succs;
            for (std::size_t s = 0; s < succs.size(); ++s) {
                if (ps.pruned_[b][s])
                    continue;
                const std::vector<u64> &from =
                    ps.reach_chains_[succs[s]];
                if (from.empty())
                    continue;
                std::vector<u64> &into = ps.reach_chains_[b];
                for (std::size_t w = 0; w < ps.chain_words_; ++w) {
                    const u64 merged = into[w] | from[w];
                    if (merged != into[w]) {
                        into[w] = merged;
                        changed = true;
                    }
                }
            }
        }
    }

    return ps;
}

bool
PathStructure::dominates(BlockId a, BlockId b) const
{
    if (a >= num_blocks_ || b >= num_blocks_ ||
        idom_[a] == kNoBlock || idom_[b] == kNoBlock)
        return false;
    while (dom_depth_[b] > dom_depth_[a])
        b = idom_[b];
    return a == b;
}

bool
PathStructure::post_dominates(BlockId a, BlockId b) const
{
    if (b >= num_blocks_ || ipdom_[b] == kNoBlock)
        return false;
    if (a == kVirtualExit)
        return true;
    if (a >= num_blocks_ || ipdom_[a] == kNoBlock)
        return false;
    while (pdom_depth_[b] > pdom_depth_[a]) {
        b = ipdom_[b];
        assert(b != kVirtualExit && b != kNoBlock);
    }
    return a == b;
}

u64
PathStructure::paths_through(BlockId b) const
{
    return sat_mul(paths_in_[b], paths_out_[b]);
}

} // namespace pokeemu::analysis
