/**
 * @file
 * Reusable backward-liveness fixpoints over an ir::Program: temp
 * liveness (is a defined value ever read again?) and byte liveness at
 * constant addresses (is a stored byte overwritten on every path
 * before any possible read?).
 *
 * Extracted from the dead-code lint so both consumers share one
 * implementation: pass_dead_code reports the findings, and the IR
 * optimizer (optimize.h) deletes them. The transfer functions mirror
 * the execution model exactly: Halt observes the whole machine state,
 * a symbolic Load may read anything, and a symbolic Store neither
 * reads nor reliably overwrites.
 */
#ifndef POKEEMU_ANALYSIS_LIVENESS_H
#define POKEEMU_ANALYSIS_LIVENESS_H

#include <vector>

#include "analysis/cfg.h"

namespace pokeemu::analysis {

/** Per-statement verdicts of the two backward fixpoints. */
struct LivenessResult
{
    /**
     * For Assign/Load statements in reachable blocks: some later
     * statement on some path may read the defined temp before it is
     * redefined. True (conservative) for every other statement.
     */
    std::vector<bool> def_live;

    /**
     * For constant-address Store statements in reachable blocks: every
     * stored byte is overwritten on every path before any possible
     * read, so deleting the store is unobservable. False (conservative)
     * for every other statement; symbolic-address stores are never
     * provably dead.
     */
    std::vector<bool> store_dead;
};

/**
 * Run both fixpoints over @p program. @p cfg must be
 * Cfg::build(program) of a verifier-clean program.
 */
LivenessResult compute_liveness(const ir::Program &program,
                                const Cfg &cfg);

} // namespace pokeemu::analysis

#endif // POKEEMU_ANALYSIS_LIVENESS_H
