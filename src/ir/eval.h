/**
 * @file
 * Concrete interpretation of IR programs.
 *
 * This is the "fast path" of the Hi-Fi emulator: the same Program that
 * the symbolic explorer walks is executed here with ordinary integers.
 * The memory the program reads and writes is supplied by the caller
 * (the Hi-Fi emulator backs it with its machine-state image plus guest
 * physical memory).
 */
#ifndef POKEEMU_IR_EVAL_H
#define POKEEMU_IR_EVAL_H

#include <vector>

#include "ir/stmt.h"

namespace pokeemu::ir {

/** Byte-addressed little-endian memory as seen by IR programs. */
class ConcreteMemory
{
  public:
    virtual ~ConcreteMemory() = default;

    /** Load @p size bytes (1/2/4) at @p addr, little-endian. */
    virtual u64 load(u32 addr, unsigned size) = 0;

    /** Store the low @p size bytes of @p value at @p addr. */
    virtual void store(u32 addr, unsigned size, u64 value) = 0;
};

/** Why a concrete run stopped. */
enum class RunStatus : u8 {
    Halted,       ///< Reached a Halt statement.
    AssumeFailed, ///< An Assume condition evaluated false.
    StepLimit,    ///< Exceeded the step budget (runaway loop guard).
};

struct RunResult
{
    RunStatus status = RunStatus::StepLimit;
    u32 halt_code = 0;  ///< Valid when status == Halted.
    u64 steps = 0;      ///< Statements executed.
};

/**
 * Execute @p program against @p memory.
 *
 * @param max_steps statement budget; generous default covers every
 *        generated semantics program including rep-prefixed loops.
 */
RunResult run_concrete(const Program &program, ConcreteMemory &memory,
                       u64 max_steps = 1u << 22);

} // namespace pokeemu::ir

#endif // POKEEMU_IR_EVAL_H
