/**
 * @file
 * IR statements and programs.
 *
 * A Program is a flat list of statements with label-indexed control
 * flow, the analog of a Vine IR fragment in FuzzBALL (paper §3.1.3).
 * Memory is byte-addressed and little-endian; loads and stores are
 * statements (not expressions) so that evaluators perform them in
 * program order and can concretize symbolic addresses at the access
 * point (paper §3.3.2, "Indexing Memory and Tables").
 */
#ifndef POKEEMU_IR_STMT_H
#define POKEEMU_IR_STMT_H

#include <string>
#include <vector>

#include "ir/expr.h"

namespace pokeemu::ir {

/** Label identifier; an index into Program::label_pos. */
using Label = u32;

/** Temporary identifier; an index into Program::temp_width. */
using TempId = u32;

enum class StmtKind : u8 {
    Assign,   ///< temp := expr
    Load,     ///< temp := mem[addr .. addr+size)
    Store,    ///< mem[addr .. addr+size) := value
    CJmp,     ///< if (cond) goto target_true else goto target_false
    Jmp,      ///< goto target_true
    Assume,   ///< add cond to the path condition (abandon if infeasible)
    Halt,     ///< stop; expr is the 32-bit program result code
    Comment,  ///< no-op annotation for printing/debugging
};

/**
 * Policy for resolving a symbolic address at a Load/Store
 * (paper §3.1.2 word extension and §3.3.2 table indexing).
 */
enum class ConcretizePolicy : u8 {
    /**
     * Pick one feasible concrete address (seeded-randomly among a
     * sample of feasible values) and constrain the path to it. Used for
     * large tables / guest memory where all locations are equivalent.
     */
    SingleRandom,
    /**
     * Enumerate all feasible addresses through the decision tree,
     * binding one bit at a time most-significant first. Used for small
     * tables where each entry is meaningfully different.
     */
    Exhaustive,
};

/** One IR statement; which fields are meaningful depends on kind. */
struct Stmt
{
    StmtKind kind = StmtKind::Comment;
    TempId temp = 0;          ///< Assign/Load destination.
    ExprRef expr;             ///< Assign rhs, Store value, CJmp/Assume
                              ///< condition, Halt code.
    ExprRef addr;             ///< Load/Store address (width 32).
    unsigned size = 0;        ///< Load/Store size in bytes (1/2/4).
    Label target_true = 0;    ///< CJmp true target / Jmp target.
    Label target_false = 0;   ///< CJmp false target.
    ConcretizePolicy policy = ConcretizePolicy::SingleRandom;
    std::string note;         ///< Comment text / branch description.
};

/**
 * A complete IR program.
 *
 * Execution starts at stmts[0] and ends at a Halt statement. Every
 * label must be bound to a statement index before execution.
 */
struct Program
{
    std::string name;
    std::vector<Stmt> stmts;
    std::vector<u32> label_pos;       ///< label id -> statement index.
    std::vector<unsigned> temp_width; ///< temp id -> bit width.

    u32 num_labels() const { return static_cast<u32>(label_pos.size()); }
    u32 num_temps() const { return static_cast<u32>(temp_width.size()); }

    /** Validate label binding, temp widths, operand widths. */
    void validate() const;
};

} // namespace pokeemu::ir

#endif // POKEEMU_IR_STMT_H
