#include "ir/printer.h"

#include <sstream>

namespace pokeemu::ir {

namespace {

void
print_expr(std::ostringstream &os, const ExprRef &e)
{
    switch (e->kind()) {
      case ExprKind::Const:
        os << "0x" << std::hex << e->value() << std::dec << ":"
           << e->width();
        break;
      case ExprKind::Var:
        os << e->name();
        break;
      case ExprKind::Temp:
        os << "t" << e->temp_id();
        break;
      case ExprKind::UnOp:
        os << "(" << unop_name(e->unop()) << " ";
        print_expr(os, e->a());
        os << ")";
        break;
      case ExprKind::BinOp:
        os << "(" << binop_name(e->binop()) << " ";
        print_expr(os, e->a());
        os << " ";
        print_expr(os, e->b());
        os << ")";
        break;
      case ExprKind::Cast:
        switch (e->cast()) {
          case CastKind::ZExt:
            os << "(zext:" << e->width() << " ";
            break;
          case CastKind::SExt:
            os << "(sext:" << e->width() << " ";
            break;
          case CastKind::Extract:
            os << "(extract:" << e->extract_lo() << "+" << e->width()
               << " ";
            break;
        }
        print_expr(os, e->a());
        os << ")";
        break;
      case ExprKind::Ite:
        os << "(ite ";
        print_expr(os, e->a());
        os << " ";
        print_expr(os, e->b());
        os << " ";
        print_expr(os, e->c());
        os << ")";
        break;
    }
}

} // namespace

std::string
to_string(const ExprRef &expr)
{
    if (!expr)
        return "<null>";
    std::ostringstream os;
    print_expr(os, expr);
    return os.str();
}

std::string
to_string(const Stmt &stmt)
{
    std::ostringstream os;
    switch (stmt.kind) {
      case StmtKind::Assign:
        os << "t" << stmt.temp << " := " << to_string(stmt.expr);
        break;
      case StmtKind::Load:
        os << "t" << stmt.temp << " := load" << stmt.size * 8 << "["
           << to_string(stmt.addr) << "]";
        break;
      case StmtKind::Store:
        os << "store" << stmt.size * 8 << "[" << to_string(stmt.addr)
           << "] := " << to_string(stmt.expr);
        break;
      case StmtKind::CJmp:
        os << "cjmp " << to_string(stmt.expr) << " ? L"
           << stmt.target_true << " : L" << stmt.target_false;
        break;
      case StmtKind::Jmp:
        os << "jmp L" << stmt.target_true;
        break;
      case StmtKind::Assume:
        os << "assume " << to_string(stmt.expr);
        break;
      case StmtKind::Halt:
        os << "halt " << to_string(stmt.expr);
        break;
      case StmtKind::Comment:
        os << "; " << stmt.note;
        return os.str();
    }
    if (!stmt.note.empty())
        os << "    ; " << stmt.note;
    return os.str();
}

std::string
to_string(const Program &program)
{
    std::ostringstream os;
    os << "program " << program.name << " (" << program.stmts.size()
       << " stmts, " << program.num_temps() << " temps)\n";
    // Invert the label map for printing.
    std::vector<std::vector<u32>> labels_at(program.stmts.size() + 1);
    for (u32 l = 0; l < program.num_labels(); ++l) {
        if (program.label_pos[l] <= program.stmts.size())
            labels_at[program.label_pos[l]].push_back(l);
    }
    for (std::size_t i = 0; i < program.stmts.size(); ++i) {
        for (u32 l : labels_at[i])
            os << "L" << l << ":\n";
        os << "  " << i << ":\t" << to_string(program.stmts[i]) << "\n";
    }
    return os.str();
}

} // namespace pokeemu::ir
