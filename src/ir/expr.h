/**
 * @file
 * Bit-vector expression trees: the PokeEMU intermediate representation's
 * value language.
 *
 * This plays the role of the Vine expression language in FuzzBALL
 * (paper §3.1.3): fixed-width bit-vectors of 1..64 bits with the usual
 * arithmetic, logical, comparison, shift, concatenation, extraction and
 * if-then-else operators. Expressions are immutable, shared via
 * ExprRef, and constructed through factory functions that aggressively
 * constant-fold and canonicalize so that symbolic execution of mostly
 * concrete code stays cheap.
 *
 * Two kinds of leaves exist:
 *  - Const: a concrete bit pattern.
 *  - Var:   a free symbolic variable (an input to the exploration);
 *           path conditions and symbolic state are expressed over Vars.
 * Temp references (IR temporaries) never appear inside stored
 * expressions: evaluators substitute temp values eagerly.
 */
#ifndef POKEEMU_IR_EXPR_H
#define POKEEMU_IR_EXPR_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/common.h"

namespace pokeemu::ir {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

enum class ExprKind : u8 { Const, Var, Temp, UnOp, BinOp, Cast, Ite };

enum class BinOpKind : u8 {
    Add, Sub, Mul, UDiv, URem, SDiv, SRem,
    And, Or, Xor,
    Shl, LShr, AShr,
    Eq, Ne, ULt, ULe, SLt, SLe,
    Concat,
};

enum class UnOpKind : u8 { Not, Neg };

enum class CastKind : u8 { ZExt, SExt, Extract };

/** Whether @p op yields a 1-bit result regardless of operand width. */
bool is_comparison(BinOpKind op);

/** Printable operator name, e.g. "add" or "ult". */
const char *binop_name(BinOpKind op);
const char *unop_name(UnOpKind op);

namespace E {
ExprRef constant(unsigned width, u64 value);
ExprRef var(u32 id, const std::string &name, unsigned width);
ExprRef temp(u32 id, unsigned width);
ExprRef binop(BinOpKind op, const ExprRef &a, const ExprRef &b);
ExprRef unop(UnOpKind op, const ExprRef &a);
ExprRef zext(const ExprRef &a, unsigned width);
ExprRef sext(const ExprRef &a, unsigned width);
ExprRef extract(const ExprRef &a, unsigned lo, unsigned width);
ExprRef ite(const ExprRef &cond, const ExprRef &t, const ExprRef &f);
} // namespace E

/**
 * An immutable bit-vector expression node.
 *
 * All fields are populated by the factory functions below; which fields
 * are meaningful depends on kind(). Nodes carry a structural hash so
 * equality checks are cheap in the simplifier and solver.
 */
class Expr
{
  public:
    ExprKind kind() const { return kind_; }
    unsigned width() const { return width_; }
    u64 hash() const { return hash_; }

    /** Const payload (kind() == Const). Always truncated to width(). */
    u64 value() const { return value_; }

    /** Var payload (kind() == Var). */
    const std::string &name() const { return name_; }
    u32 var_id() const { return var_id_; }

    /** Temp payload (kind() == Temp): the IR temporary referenced. */
    u32 temp_id() const { return var_id_; }

    BinOpKind binop() const { return binop_; }
    UnOpKind unop() const { return unop_; }
    CastKind cast() const { return cast_; }

    /** Extract low bit position (kind() == Cast && cast() == Extract). */
    unsigned extract_lo() const { return lo_; }

    /** Operands: a() for unary/cast, a()/b() binary, a()/b()/c() ite. */
    const ExprRef &a() const { return a_; }
    const ExprRef &b() const { return b_; }
    const ExprRef &c() const { return c_; }

    bool is_const() const { return kind_ == ExprKind::Const; }
    bool is_const(u64 v) const { return is_const() && value_ == v; }
    bool is_var() const { return kind_ == ExprKind::Var; }

    /** Deep structural equality (hash-prechecked). */
    static bool equal(const ExprRef &x, const ExprRef &y);

    /** Number of nodes in the tree (shared nodes counted once). */
    static std::size_t size(const ExprRef &x);

    /** Collect the distinct variables appearing in @p x into @p out. */
    static void collect_vars(const ExprRef &x, std::vector<ExprRef> &out);

    /**
     * Allocate an empty node; only the E:: factories (friends) can
     * populate it, so this does not open a construction side door.
     */
    static std::shared_ptr<Expr> make()
    {
        return std::shared_ptr<Expr>(new Expr());
    }

  private:
    Expr() = default;

    friend ExprRef E::constant(unsigned, u64);
    friend ExprRef E::var(u32, const std::string &, unsigned);
    friend ExprRef E::temp(u32, unsigned);
    friend ExprRef E::binop(BinOpKind, const ExprRef &, const ExprRef &);
    friend ExprRef E::unop(UnOpKind, const ExprRef &);
    friend ExprRef E::zext(const ExprRef &, unsigned);
    friend ExprRef E::sext(const ExprRef &, unsigned);
    friend ExprRef E::extract(const ExprRef &, unsigned, unsigned);
    friend ExprRef E::ite(const ExprRef &, const ExprRef &,
                          const ExprRef &);

    ExprKind kind_ = ExprKind::Const;
    BinOpKind binop_ = BinOpKind::Add;
    UnOpKind unop_ = UnOpKind::Not;
    CastKind cast_ = CastKind::ZExt;
    unsigned width_ = 1;
    unsigned lo_ = 0;
    u64 value_ = 0;
    u32 var_id_ = 0;
    u64 hash_ = 0;
    std::string name_;
    ExprRef a_, b_, c_;
};

/**
 * Factory namespace: every construction path runs through these, which
 * constant-fold and apply local canonicalization rules (see expr.cpp).
 */
namespace E {

/** A concrete constant of @p width bits. */
ExprRef constant(unsigned width, u64 value);

/** 1-bit constants. */
ExprRef bool_const(bool b);

/**
 * A fresh/free symbolic variable. @p id must be unique per distinct
 * variable; names are for humans, ids are identity.
 */
ExprRef var(u32 id, const std::string &name, unsigned width);

/**
 * A reference to IR temporary @p id. Only ever appears in Program
 * statement text; evaluators substitute the temp's current value, so
 * stored symbolic state and path conditions are Temp-free.
 */
ExprRef temp(u32 id, unsigned width);

ExprRef binop(BinOpKind op, const ExprRef &a, const ExprRef &b);
ExprRef unop(UnOpKind op, const ExprRef &a);
ExprRef zext(const ExprRef &a, unsigned width);
ExprRef sext(const ExprRef &a, unsigned width);
ExprRef extract(const ExprRef &a, unsigned lo, unsigned width);
ExprRef ite(const ExprRef &cond, const ExprRef &t, const ExprRef &f);

// Convenience wrappers.
ExprRef add(const ExprRef &a, const ExprRef &b);
ExprRef sub(const ExprRef &a, const ExprRef &b);
ExprRef mul(const ExprRef &a, const ExprRef &b);
ExprRef band(const ExprRef &a, const ExprRef &b);
ExprRef bor(const ExprRef &a, const ExprRef &b);
ExprRef bxor(const ExprRef &a, const ExprRef &b);
ExprRef bnot(const ExprRef &a);
ExprRef neg(const ExprRef &a);
ExprRef shl(const ExprRef &a, const ExprRef &b);
ExprRef lshr(const ExprRef &a, const ExprRef &b);
ExprRef ashr(const ExprRef &a, const ExprRef &b);
ExprRef eq(const ExprRef &a, const ExprRef &b);
ExprRef ne(const ExprRef &a, const ExprRef &b);
ExprRef ult(const ExprRef &a, const ExprRef &b);
ExprRef ule(const ExprRef &a, const ExprRef &b);
ExprRef slt(const ExprRef &a, const ExprRef &b);
ExprRef sle(const ExprRef &a, const ExprRef &b);
ExprRef concat(const ExprRef &hi, const ExprRef &lo);

/** Logical operations on 1-bit values. */
ExprRef land(const ExprRef &a, const ExprRef &b);
ExprRef lor(const ExprRef &a, const ExprRef &b);
ExprRef lnot(const ExprRef &a);

} // namespace E

/**
 * Evaluate a Var-free-or-assigned expression to a concrete value.
 *
 * @param x expression to evaluate.
 * @param lookup maps a Var or Temp node to its concrete value; invoked
 *        for every such leaf. May be null only if the expression is
 *        leaf-free of both.
 * @return the value, truncated to x->width().
 */
u64 eval_expr(const ExprRef &x,
              const std::function<u64(const Expr &)> *lookup);

/**
 * Substitute leaves in @p x: wherever a Var or Temp leaf appears,
 * replace it with map(leaf) if non-null. Used by evaluators to resolve
 * temps and by the summarizer when instantiating pre-computed summaries
 * (paper §3.3.2).
 */
ExprRef substitute(const ExprRef &x,
                   const std::function<ExprRef(const Expr &)> &map);

} // namespace pokeemu::ir

#endif // POKEEMU_IR_EXPR_H
