#include "ir/builder.h"

namespace pokeemu::ir {

namespace {

/** Sentinel meaning "label declared but not yet bound". */
constexpr u32 kUnbound = ~u32{0};

} // namespace

IrBuilder::IrBuilder(std::string name)
{
    program_.name = std::move(name);
}

ExprRef
IrBuilder::new_temp(unsigned width)
{
    const TempId id = program_.num_temps();
    program_.temp_width.push_back(width);
    return E::temp(id, width);
}

ExprRef
IrBuilder::assign(const ExprRef &value, const std::string &note)
{
    // Constants need no temp: using them directly keeps programs small.
    if (value->is_const())
        return value;
    ExprRef t = new_temp(value->width());
    Stmt s;
    s.kind = StmtKind::Assign;
    s.temp = t->temp_id();
    s.expr = value;
    s.note = note;
    program_.stmts.push_back(std::move(s));
    return t;
}

ExprRef
IrBuilder::load(const ExprRef &addr, unsigned size,
                ConcretizePolicy policy, const std::string &note)
{
    ExprRef t = new_temp(size * 8);
    Stmt s;
    s.kind = StmtKind::Load;
    s.temp = t->temp_id();
    s.addr = addr;
    s.size = size;
    s.policy = policy;
    s.note = note;
    program_.stmts.push_back(std::move(s));
    return t;
}

void
IrBuilder::store(const ExprRef &addr, unsigned size, const ExprRef &value,
                 const std::string &note)
{
    Stmt s;
    s.kind = StmtKind::Store;
    s.addr = addr;
    s.size = size;
    s.expr = value;
    s.note = note;
    program_.stmts.push_back(std::move(s));
}

Label
IrBuilder::label()
{
    program_.label_pos.push_back(kUnbound);
    return program_.num_labels() - 1;
}

void
IrBuilder::bind(Label l)
{
    assert(l < program_.num_labels());
    assert(program_.label_pos[l] == kUnbound);
    program_.label_pos[l] = static_cast<u32>(program_.stmts.size());
}

Label
IrBuilder::here()
{
    Label l = label();
    bind(l);
    return l;
}

void
IrBuilder::cjmp(const ExprRef &cond, Label if_true, Label if_false,
                const std::string &note)
{
    Stmt s;
    s.kind = StmtKind::CJmp;
    s.expr = cond;
    s.target_true = if_true;
    s.target_false = if_false;
    s.note = note;
    program_.stmts.push_back(std::move(s));
}

void
IrBuilder::if_goto(const ExprRef &cond, Label if_true,
                   const std::string &note)
{
    Label fall = label();
    cjmp(cond, if_true, fall, note);
    bind(fall);
}

void
IrBuilder::unless_goto(const ExprRef &cond, Label if_false,
                       const std::string &note)
{
    Label fall = label();
    cjmp(cond, fall, if_false, note);
    bind(fall);
}

void
IrBuilder::jmp(Label target)
{
    Stmt s;
    s.kind = StmtKind::Jmp;
    s.target_true = target;
    program_.stmts.push_back(std::move(s));
}

void
IrBuilder::assume(const ExprRef &cond, const std::string &note)
{
    Stmt s;
    s.kind = StmtKind::Assume;
    s.expr = cond;
    s.note = note;
    program_.stmts.push_back(std::move(s));
}

void
IrBuilder::halt(u32 code)
{
    halt(E::constant(32, code));
}

void
IrBuilder::halt(const ExprRef &code)
{
    Stmt s;
    s.kind = StmtKind::Halt;
    s.expr = code;
    program_.stmts.push_back(std::move(s));
}

void
IrBuilder::comment(const std::string &text)
{
    Stmt s;
    s.kind = StmtKind::Comment;
    s.note = text;
    program_.stmts.push_back(std::move(s));
}

Program
IrBuilder::finish()
{
    assert(!finished_);
    finished_ = true;
    // A trailing halt guards against running off the end.
    if (program_.stmts.empty() ||
        program_.stmts.back().kind != StmtKind::Halt) {
        halt(0xdeadbeef);
    }
    program_.validate();
    return std::move(program_);
}

} // namespace pokeemu::ir
