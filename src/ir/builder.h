/**
 * @file
 * Fluent construction of IR programs.
 *
 * The Hi-Fi emulator's decoder and per-instruction semantics are
 * generated programmatically through this builder (the analog of Vine
 * lifting the Bochs binary in the paper): C++ "generator" functions
 * append IR statements describing the emulator's implementation, and
 * the result is a Program that can be interpreted concretely (test
 * execution) or symbolically (path exploration).
 */
#ifndef POKEEMU_IR_BUILDER_H
#define POKEEMU_IR_BUILDER_H

#include <string>

#include "ir/stmt.h"

namespace pokeemu::ir {

/** Incrementally builds a Program; see file comment. */
class IrBuilder
{
  public:
    explicit IrBuilder(std::string name);

    /** Shorthand for a constant of the given width. */
    static ExprRef imm(unsigned width, u64 value)
    {
        return E::constant(width, value);
    }

    static ExprRef imm32(u64 value) { return E::constant(32, value); }
    static ExprRef imm8(u64 value) { return E::constant(8, value); }

    /**
     * Bind @p value to a fresh temp via an Assign statement and return
     * a reference to the temp. Use to share a subexpression across many
     * later uses without duplicating its tree.
     */
    ExprRef assign(const ExprRef &value, const std::string &note = "");

    /** Emit a load; returns a temp holding the loaded value. */
    ExprRef load(const ExprRef &addr, unsigned size,
                 ConcretizePolicy policy = ConcretizePolicy::SingleRandom,
                 const std::string &note = "");

    /** Emit a store. */
    void store(const ExprRef &addr, unsigned size, const ExprRef &value,
               const std::string &note = "");

    /** Declare a label; must be bound with bind() before finish(). */
    Label label();

    /** Bind @p l to the next statement position. */
    void bind(Label l);

    /** Declare-and-bind in one step. */
    Label here();

    /** Two-target conditional jump (both directions explicit). */
    void cjmp(const ExprRef &cond, Label if_true, Label if_false,
              const std::string &note = "");

    /** Jump to @p if_true when cond holds; otherwise fall through. */
    void if_goto(const ExprRef &cond, Label if_true,
                 const std::string &note = "");

    /** Fall through when cond holds; otherwise jump to @p if_false. */
    void unless_goto(const ExprRef &cond, Label if_false,
                     const std::string &note = "");

    void jmp(Label target);

    /** Constrain the path; infeasible assumptions end exploration. */
    void assume(const ExprRef &cond, const std::string &note = "");

    /** Terminate with a concrete result code. */
    void halt(u32 code);

    /** Terminate with a computed 32-bit result code. */
    void halt(const ExprRef &code);

    void comment(const std::string &text);

    /** Validate and move out the finished program. */
    Program finish();

    /** Number of statements appended so far. */
    std::size_t size() const { return program_.stmts.size(); }

  private:
    ExprRef new_temp(unsigned width);

    Program program_;
    bool finished_ = false;
};

} // namespace pokeemu::ir

#endif // POKEEMU_IR_BUILDER_H
