#include "ir/expr.h"

#include <unordered_map>

namespace pokeemu::ir {

namespace {

u64
hash_mix(u64 h, u64 v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

bool
is_commutative(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add:
      case BinOpKind::Mul:
      case BinOpKind::And:
      case BinOpKind::Or:
      case BinOpKind::Xor:
      case BinOpKind::Eq:
      case BinOpKind::Ne:
        return true;
      default:
        return false;
    }
}

/** Concrete semantics of a binary operator on @p width-bit operands. */
u64
fold_binop(BinOpKind op, unsigned width, u64 a, u64 b, unsigned bwidth)
{
    const u64 am = truncate(a, width);
    const u64 bm = truncate(b, bwidth);
    switch (op) {
      case BinOpKind::Add: return truncate(am + bm, width);
      case BinOpKind::Sub: return truncate(am - bm, width);
      case BinOpKind::Mul: return truncate(am * bm, width);
      case BinOpKind::UDiv:
        // x86 semantics raise #DE before division; IR-level division by
        // zero yields all-ones like SMT-LIB bvudiv.
        return bm == 0 ? mask_bits(width) : truncate(am / bm, width);
      case BinOpKind::URem:
        return bm == 0 ? am : truncate(am % bm, width);
      case BinOpKind::SDiv: {
        if (bm == 0)
            return mask_bits(width);
        const s64 sa = sign_extend(am, width);
        const s64 sb = sign_extend(bm, width);
        if (sb == -1 && sa == sign_extend(u64{1} << (width - 1), width))
            return truncate(static_cast<u64>(sa), width);
        return truncate(static_cast<u64>(sa / sb), width);
      }
      case BinOpKind::SRem: {
        if (bm == 0)
            return am;
        const s64 sa = sign_extend(am, width);
        const s64 sb = sign_extend(bm, width);
        if (sb == -1)
            return 0;
        return truncate(static_cast<u64>(sa % sb), width);
      }
      case BinOpKind::And: return am & bm;
      case BinOpKind::Or: return am | bm;
      case BinOpKind::Xor: return am ^ bm;
      case BinOpKind::Shl:
        return bm >= width ? 0 : truncate(am << bm, width);
      case BinOpKind::LShr:
        return bm >= width ? 0 : (am >> bm);
      case BinOpKind::AShr: {
        const s64 sa = sign_extend(am, width);
        const u64 sh = bm >= width ? width - 1 : bm;
        return truncate(static_cast<u64>(sa >> sh), width);
      }
      case BinOpKind::Eq: return am == bm;
      case BinOpKind::Ne: return am != bm;
      case BinOpKind::ULt: return am < bm;
      case BinOpKind::ULe: return am <= bm;
      case BinOpKind::SLt:
        return sign_extend(am, width) < sign_extend(bm, width);
      case BinOpKind::SLe:
        return sign_extend(am, width) <= sign_extend(bm, width);
      case BinOpKind::Concat:
        return truncate((am << bwidth) | bm, width + bwidth);
    }
    panic("unhandled binop fold");
}

} // namespace

bool
is_comparison(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Eq:
      case BinOpKind::Ne:
      case BinOpKind::ULt:
      case BinOpKind::ULe:
      case BinOpKind::SLt:
      case BinOpKind::SLe:
        return true;
      default:
        return false;
    }
}

const char *
binop_name(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add: return "add";
      case BinOpKind::Sub: return "sub";
      case BinOpKind::Mul: return "mul";
      case BinOpKind::UDiv: return "udiv";
      case BinOpKind::URem: return "urem";
      case BinOpKind::SDiv: return "sdiv";
      case BinOpKind::SRem: return "srem";
      case BinOpKind::And: return "and";
      case BinOpKind::Or: return "or";
      case BinOpKind::Xor: return "xor";
      case BinOpKind::Shl: return "shl";
      case BinOpKind::LShr: return "lshr";
      case BinOpKind::AShr: return "ashr";
      case BinOpKind::Eq: return "eq";
      case BinOpKind::Ne: return "ne";
      case BinOpKind::ULt: return "ult";
      case BinOpKind::ULe: return "ule";
      case BinOpKind::SLt: return "slt";
      case BinOpKind::SLe: return "sle";
      case BinOpKind::Concat: return "concat";
    }
    return "?";
}

const char *
unop_name(UnOpKind op)
{
    switch (op) {
      case UnOpKind::Not: return "not";
      case UnOpKind::Neg: return "neg";
    }
    return "?";
}

bool
Expr::equal(const ExprRef &x, const ExprRef &y)
{
    if (x.get() == y.get())
        return true;
    if (!x || !y)
        return false;
    if (x->hash_ != y->hash_ || x->kind_ != y->kind_ ||
        x->width_ != y->width_) {
        return false;
    }
    switch (x->kind_) {
      case ExprKind::Const:
        return x->value_ == y->value_;
      case ExprKind::Var:
      case ExprKind::Temp:
        return x->var_id_ == y->var_id_;
      case ExprKind::UnOp:
        return x->unop_ == y->unop_ && equal(x->a_, y->a_);
      case ExprKind::BinOp:
        return x->binop_ == y->binop_ && equal(x->a_, y->a_) &&
               equal(x->b_, y->b_);
      case ExprKind::Cast:
        return x->cast_ == y->cast_ && x->lo_ == y->lo_ &&
               equal(x->a_, y->a_);
      case ExprKind::Ite:
        return equal(x->a_, y->a_) && equal(x->b_, y->b_) &&
               equal(x->c_, y->c_);
    }
    return false;
}

std::size_t
Expr::size(const ExprRef &x)
{
    std::unordered_map<const Expr *, bool> seen;
    std::size_t count = 0;
    std::vector<const Expr *> stack{x.get()};
    while (!stack.empty()) {
        const Expr *e = stack.back();
        stack.pop_back();
        if (!e || seen.count(e))
            continue;
        seen[e] = true;
        ++count;
        if (e->a_) stack.push_back(e->a_.get());
        if (e->b_) stack.push_back(e->b_.get());
        if (e->c_) stack.push_back(e->c_.get());
    }
    return count;
}

void
Expr::collect_vars(const ExprRef &x, std::vector<ExprRef> &out)
{
    std::unordered_map<const Expr *, bool> seen;
    std::unordered_map<u32, bool> var_seen;
    for (const auto &v : out)
        var_seen[v->var_id()] = true;
    std::vector<ExprRef> stack{x};
    while (!stack.empty()) {
        ExprRef e = stack.back();
        stack.pop_back();
        if (!e || seen.count(e.get()))
            continue;
        seen[e.get()] = true;
        if (e->is_var()) {
            if (!var_seen.count(e->var_id())) {
                var_seen[e->var_id()] = true;
                out.push_back(e);
            }
            continue;
        }
        if (e->a_) stack.push_back(e->a_);
        if (e->b_) stack.push_back(e->b_);
        if (e->c_) stack.push_back(e->c_);
    }
}

namespace E {

namespace {

std::shared_ptr<Expr>
make_node()
{
    return Expr::make();
}

/**
 * Hash-consing: structurally identical expressions share one node, so
 * pointer-keyed caches (notably the solver's bit-blast cache) hit
 * across the explorer's per-path re-executions. Children are interned
 * first, so shallow (pointer) child comparison suffices.
 */
bool
shallow_equal(const Expr &x, const Expr &y)
{
    if (x.kind() != y.kind() || x.width() != y.width())
        return false;
    switch (x.kind()) {
      case ExprKind::Const:
        return x.value() == y.value();
      case ExprKind::Var:
        return x.var_id() == y.var_id() && x.name() == y.name();
      case ExprKind::Temp:
        return x.temp_id() == y.temp_id();
      case ExprKind::UnOp:
        return x.unop() == y.unop() && x.a().get() == y.a().get();
      case ExprKind::BinOp:
        return x.binop() == y.binop() && x.a().get() == y.a().get() &&
               x.b().get() == y.b().get();
      case ExprKind::Cast:
        return x.cast() == y.cast() &&
               x.extract_lo() == y.extract_lo() &&
               x.a().get() == y.a().get();
      case ExprKind::Ite:
        return x.a().get() == y.a().get() &&
               x.b().get() == y.b().get() &&
               x.c().get() == y.c().get();
    }
    return false;
}

ExprRef
intern(std::shared_ptr<Expr> e)
{
    // Thread-local: the library is used single-threaded per pipeline;
    // thread-locality keeps this safe if callers parallelize.
    thread_local std::unordered_map<u64, std::vector<ExprRef>> table;
    auto &bucket = table[e->hash()];
    for (const ExprRef &existing : bucket) {
        if (shallow_equal(*existing, *e))
            return existing;
    }
    bucket.push_back(e);
    return e;
}

} // namespace

ExprRef
constant(unsigned width, u64 value)
{
    assert(width >= 1 && width <= 64);
    auto e = make_node();
    e->kind_ = ExprKind::Const;
    e->width_ = width;
    e->value_ = truncate(value, width);
    e->hash_ = hash_mix(hash_mix(1, width), e->value_);
    return intern(std::move(e));
}

ExprRef
bool_const(bool b)
{
    return constant(1, b ? 1 : 0);
}

ExprRef
temp(u32 id, unsigned width)
{
    assert(width >= 1 && width <= 64);
    auto e = make_node();
    e->kind_ = ExprKind::Temp;
    e->width_ = width;
    e->var_id_ = id;
    e->hash_ = hash_mix(hash_mix(9, width), id);
    return intern(std::move(e));
}

ExprRef
var(u32 id, const std::string &name, unsigned width)
{
    assert(width >= 1 && width <= 64);
    auto e = make_node();
    e->kind_ = ExprKind::Var;
    e->width_ = width;
    e->var_id_ = id;
    e->name_ = name;
    e->hash_ = hash_mix(hash_mix(2, width), id);
    return intern(std::move(e));
}

ExprRef
binop(BinOpKind op, const ExprRef &a, const ExprRef &b)
{
    assert(a && b);
    if (op == BinOpKind::Concat) {
        assert(a->width() + b->width() <= 64);
    } else {
        assert(a->width() == b->width());
    }
    const unsigned w = op == BinOpKind::Concat
        ? a->width() + b->width()
        : (is_comparison(op) ? 1 : a->width());

    // Constant folding.
    if (a->is_const() && b->is_const()) {
        return constant(w, fold_binop(op, a->width(), a->value(),
                                      b->value(), b->width()));
    }

    ExprRef lhs = a, rhs = b;
    // Canonicalize: constants to the right for commutative operators.
    if (is_commutative(op) && lhs->is_const())
        std::swap(lhs, rhs);

    // Identity / annihilator rules with a constant on the right.
    if (rhs->is_const()) {
        const u64 c = rhs->value();
        const u64 ones = mask_bits(lhs->width());
        switch (op) {
          case BinOpKind::Add:
          case BinOpKind::Sub:
            if (c == 0)
                return lhs;
            // (x + c1) + c2  ->  x + (c1 + c2); same folding for sub.
            if (lhs->kind() == ExprKind::BinOp &&
                lhs->binop() == BinOpKind::Add && lhs->b()->is_const()) {
                const u64 c1 = lhs->b()->value();
                const u64 c2 = op == BinOpKind::Add ? c : (~c + 1);
                return binop(BinOpKind::Add, lhs->a(),
                             constant(lhs->width(), c1 + c2));
            }
            break;
          case BinOpKind::Mul:
            if (c == 1)
                return lhs;
            if (c == 0)
                return constant(w, 0);
            break;
          case BinOpKind::And:
            if (c == ones)
                return lhs;
            if (c == 0)
                return constant(w, 0);
            break;
          case BinOpKind::Or:
            if (c == 0)
                return lhs;
            if (c == ones)
                return constant(w, ones);
            break;
          case BinOpKind::Xor:
            if (c == 0)
                return lhs;
            break;
          case BinOpKind::Shl:
          case BinOpKind::LShr:
          case BinOpKind::AShr:
            if (c == 0)
                return lhs;
            break;
          default:
            break;
        }
    }

    // Same-operand rules.
    if (Expr::equal(lhs, rhs)) {
        switch (op) {
          case BinOpKind::Sub:
          case BinOpKind::Xor:
            return constant(w, 0);
          case BinOpKind::And:
          case BinOpKind::Or:
            return lhs;
          case BinOpKind::Eq:
          case BinOpKind::ULe:
          case BinOpKind::SLe:
            return bool_const(true);
          case BinOpKind::Ne:
          case BinOpKind::ULt:
          case BinOpKind::SLt:
            return bool_const(false);
          default:
            break;
        }
    }

    // Adjacent-extract fusion: concat(x[hi..], x[..lo]) -> x[hi..lo].
    if (op == BinOpKind::Concat && lhs->kind() == ExprKind::Cast &&
        lhs->cast() == CastKind::Extract &&
        rhs->kind() == ExprKind::Cast &&
        rhs->cast() == CastKind::Extract &&
        lhs->a().get() == rhs->a().get() &&
        lhs->extract_lo() == rhs->extract_lo() + rhs->width()) {
        return extract(lhs->a(), rhs->extract_lo(),
                       lhs->width() + rhs->width());
    }

    auto e = make_node();
    e->kind_ = ExprKind::BinOp;
    e->binop_ = op;
    e->width_ = w;
    e->a_ = lhs;
    e->b_ = rhs;
    e->hash_ = hash_mix(hash_mix(hash_mix(hash_mix(3, (u64)op), w),
                                 lhs->hash()), rhs->hash());
    return intern(std::move(e));
}

ExprRef
unop(UnOpKind op, const ExprRef &a)
{
    assert(a);
    if (a->is_const()) {
        const u64 v = op == UnOpKind::Not ? ~a->value() : (~a->value() + 1);
        return constant(a->width(), v);
    }
    // Involution: not(not(x)) == x, neg(neg(x)) == x.
    if (a->kind() == ExprKind::UnOp && a->unop() == op)
        return a->a();
    auto e = make_node();
    e->kind_ = ExprKind::UnOp;
    e->unop_ = op;
    e->width_ = a->width();
    e->a_ = a;
    e->hash_ = hash_mix(hash_mix(hash_mix(4, (u64)op), a->width()),
                        a->hash());
    return intern(std::move(e));
}

ExprRef
zext(const ExprRef &a, unsigned width)
{
    assert(a && width >= a->width() && width <= 64);
    if (width == a->width())
        return a;
    if (a->is_const())
        return constant(width, a->value());
    auto e = make_node();
    e->kind_ = ExprKind::Cast;
    e->cast_ = CastKind::ZExt;
    e->width_ = width;
    e->a_ = a;
    e->hash_ = hash_mix(hash_mix(5, width), a->hash());
    return intern(std::move(e));
}

ExprRef
sext(const ExprRef &a, unsigned width)
{
    assert(a && width >= a->width() && width <= 64);
    if (width == a->width())
        return a;
    if (a->is_const()) {
        return constant(width,
                        static_cast<u64>(sign_extend(a->value(),
                                                     a->width())));
    }
    auto e = make_node();
    e->kind_ = ExprKind::Cast;
    e->cast_ = CastKind::SExt;
    e->width_ = width;
    e->a_ = a;
    e->hash_ = hash_mix(hash_mix(6, width), a->hash());
    return intern(std::move(e));
}

ExprRef
extract(const ExprRef &a, unsigned lo, unsigned width)
{
    assert(a && width >= 1 && lo + width <= a->width());
    if (lo == 0 && width == a->width())
        return a;
    if (a->is_const())
        return constant(width, a->value() >> lo);
    // extract(extract(x, l2, _), l1, w) -> extract(x, l1+l2, w)
    if (a->kind() == ExprKind::Cast && a->cast() == CastKind::Extract)
        return extract(a->a(), lo + a->extract_lo(), width);
    // extract(zext(x)): within x -> extract(x); fully above -> 0.
    if (a->kind() == ExprKind::Cast && a->cast() == CastKind::ZExt) {
        const unsigned iw = a->a()->width();
        if (lo + width <= iw)
            return extract(a->a(), lo, width);
        if (lo >= iw)
            return constant(width, 0);
    }
    // extract(sext(x)): fully within x -> extract(x).
    if (a->kind() == ExprKind::Cast && a->cast() == CastKind::SExt &&
        lo + width <= a->a()->width()) {
        return extract(a->a(), lo, width);
    }
    // extract(concat(hi, lo_part)): resolve if fully inside one side.
    if (a->kind() == ExprKind::BinOp && a->binop() == BinOpKind::Concat) {
        const unsigned low_w = a->b()->width();
        if (lo + width <= low_w)
            return extract(a->b(), lo, width);
        if (lo >= low_w)
            return extract(a->a(), lo - low_w, width);
    }
    // extract distributes over bitwise operators and ite: this lets
    // masked bytes (var & mask | const) fold their concrete bits,
    // which keeps branches on pinned state bits concrete.
    if (a->kind() == ExprKind::BinOp &&
        (a->binop() == BinOpKind::And || a->binop() == BinOpKind::Or ||
         a->binop() == BinOpKind::Xor)) {
        return binop(a->binop(), extract(a->a(), lo, width),
                     extract(a->b(), lo, width));
    }
    if (a->kind() == ExprKind::Ite) {
        return ite(a->a(), extract(a->b(), lo, width),
                   extract(a->c(), lo, width));
    }
    auto e = make_node();
    e->kind_ = ExprKind::Cast;
    e->cast_ = CastKind::Extract;
    e->width_ = width;
    e->lo_ = lo;
    e->a_ = a;
    e->hash_ = hash_mix(hash_mix(hash_mix(7, width), lo), a->hash());
    return intern(std::move(e));
}

ExprRef
ite(const ExprRef &cond, const ExprRef &t, const ExprRef &f)
{
    assert(cond && t && f);
    assert(cond->width() == 1 && t->width() == f->width());
    if (cond->is_const())
        return cond->value() ? t : f;
    if (Expr::equal(t, f))
        return t;
    // ite(c, 1, 0) on 1-bit values is just c; ite(c, 0, 1) is !c.
    if (t->width() == 1 && t->is_const() && f->is_const()) {
        if (t->value() == 1 && f->value() == 0)
            return cond;
        if (t->value() == 0 && f->value() == 1)
            return unop(UnOpKind::Not, cond);
    }
    auto e = make_node();
    e->kind_ = ExprKind::Ite;
    e->width_ = t->width();
    e->a_ = cond;
    e->b_ = t;
    e->c_ = f;
    e->hash_ = hash_mix(hash_mix(hash_mix(hash_mix(8, t->width()),
                                          cond->hash()), t->hash()),
                        f->hash());
    return intern(std::move(e));
}

ExprRef add(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Add, a, b); }
ExprRef sub(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Sub, a, b); }
ExprRef mul(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Mul, a, b); }
ExprRef band(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::And, a, b); }
ExprRef bor(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Or, a, b); }
ExprRef bxor(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Xor, a, b); }
ExprRef bnot(const ExprRef &a) { return unop(UnOpKind::Not, a); }
ExprRef neg(const ExprRef &a) { return unop(UnOpKind::Neg, a); }
ExprRef shl(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Shl, a, b); }
ExprRef lshr(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::LShr, a, b); }
ExprRef ashr(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::AShr, a, b); }
ExprRef eq(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Eq, a, b); }
ExprRef ne(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::Ne, a, b); }
ExprRef ult(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::ULt, a, b); }
ExprRef ule(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::ULe, a, b); }
ExprRef slt(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::SLt, a, b); }
ExprRef sle(const ExprRef &a, const ExprRef &b)
{ return binop(BinOpKind::SLe, a, b); }
ExprRef concat(const ExprRef &hi, const ExprRef &lo)
{ return binop(BinOpKind::Concat, hi, lo); }

ExprRef
land(const ExprRef &a, const ExprRef &b)
{
    assert(a->width() == 1 && b->width() == 1);
    return binop(BinOpKind::And, a, b);
}

ExprRef
lor(const ExprRef &a, const ExprRef &b)
{
    assert(a->width() == 1 && b->width() == 1);
    return binop(BinOpKind::Or, a, b);
}

ExprRef
lnot(const ExprRef &a)
{
    assert(a->width() == 1);
    return unop(UnOpKind::Not, a);
}

} // namespace E

u64
eval_expr(const ExprRef &x, const std::function<u64(const Expr &)> *lookup)
{
    std::unordered_map<const Expr *, u64> memo;

    std::function<u64(const ExprRef &)> go =
        [&](const ExprRef &e) -> u64 {
        auto it = memo.find(e.get());
        if (it != memo.end())
            return it->second;
        u64 r = 0;
        switch (e->kind()) {
          case ExprKind::Const:
            r = e->value();
            break;
          case ExprKind::Var:
          case ExprKind::Temp:
            if (!lookup)
                panic("eval_expr: free variable " + e->name());
            r = truncate((*lookup)(*e), e->width());
            break;
          case ExprKind::UnOp: {
            const u64 a = go(e->a());
            r = e->unop() == UnOpKind::Not ? ~a : (~a + 1);
            r = truncate(r, e->width());
            break;
          }
          case ExprKind::BinOp:
            r = fold_binop(e->binop(), e->a()->width(), go(e->a()),
                           go(e->b()), e->b()->width());
            break;
          case ExprKind::Cast: {
            const u64 a = go(e->a());
            switch (e->cast()) {
              case CastKind::ZExt:
                r = truncate(a, e->a()->width());
                break;
              case CastKind::SExt:
                r = truncate(static_cast<u64>(
                                 sign_extend(a, e->a()->width())),
                             e->width());
                break;
              case CastKind::Extract:
                r = truncate(a >> e->extract_lo(), e->width());
                break;
            }
            break;
          }
          case ExprKind::Ite:
            r = go(e->a()) ? go(e->b()) : go(e->c());
            break;
        }
        memo[e.get()] = r;
        return r;
    };
    return go(x);
}

ExprRef
substitute(const ExprRef &x,
           const std::function<ExprRef(const Expr &)> &map)
{
    std::unordered_map<const Expr *, ExprRef> memo;

    std::function<ExprRef(const ExprRef &)> go =
        [&](const ExprRef &e) -> ExprRef {
        auto it = memo.find(e.get());
        if (it != memo.end())
            return it->second;
        ExprRef r;
        switch (e->kind()) {
          case ExprKind::Const:
            r = e;
            break;
          case ExprKind::Var:
          case ExprKind::Temp: {
            ExprRef repl = map(*e);
            r = repl ? repl : e;
            assert(r->width() == e->width());
            break;
          }
          case ExprKind::UnOp:
            r = E::unop(e->unop(), go(e->a()));
            break;
          case ExprKind::BinOp:
            r = E::binop(e->binop(), go(e->a()), go(e->b()));
            break;
          case ExprKind::Cast:
            switch (e->cast()) {
              case CastKind::ZExt:
                r = E::zext(go(e->a()), e->width());
                break;
              case CastKind::SExt:
                r = E::sext(go(e->a()), e->width());
                break;
              case CastKind::Extract:
                r = E::extract(go(e->a()), e->extract_lo(), e->width());
                break;
            }
            break;
          case ExprKind::Ite:
            r = E::ite(go(e->a()), go(e->b()), go(e->c()));
            break;
        }
        memo[e.get()] = r;
        return r;
    };
    return go(x);
}

} // namespace pokeemu::ir
