#include "ir/stmt.h"

namespace pokeemu::ir {

void
Program::validate() const
{
    for (std::size_t i = 0; i < label_pos.size(); ++i) {
        if (label_pos[i] >= stmts.size())
            panic(name + ": unbound or out-of-range label");
    }
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        const Stmt &s = stmts[i];
        switch (s.kind) {
          case StmtKind::Assign:
            if (s.temp >= num_temps() || !s.expr ||
                s.expr->width() != temp_width[s.temp]) {
                panic(name + ": bad assign at stmt " + std::to_string(i));
            }
            break;
          case StmtKind::Load:
            if (s.temp >= num_temps() || !s.addr ||
                s.addr->width() != 32 ||
                (s.size != 1 && s.size != 2 && s.size != 4) ||
                temp_width[s.temp] != s.size * 8) {
                panic(name + ": bad load at stmt " + std::to_string(i));
            }
            break;
          case StmtKind::Store:
            if (!s.addr || s.addr->width() != 32 || !s.expr ||
                (s.size != 1 && s.size != 2 && s.size != 4) ||
                s.expr->width() != s.size * 8) {
                panic(name + ": bad store at stmt " + std::to_string(i));
            }
            break;
          case StmtKind::CJmp:
            if (!s.expr || s.expr->width() != 1 ||
                s.target_true >= num_labels() ||
                s.target_false >= num_labels()) {
                panic(name + ": bad cjmp at stmt " + std::to_string(i));
            }
            break;
          case StmtKind::Jmp:
            if (s.target_true >= num_labels())
                panic(name + ": bad jmp at stmt " + std::to_string(i));
            break;
          case StmtKind::Assume:
            if (!s.expr || s.expr->width() != 1)
                panic(name + ": bad assume at stmt " + std::to_string(i));
            break;
          case StmtKind::Halt:
            if (!s.expr || s.expr->width() != 32)
                panic(name + ": bad halt at stmt " + std::to_string(i));
            break;
          case StmtKind::Comment:
            break;
        }
    }
}

} // namespace pokeemu::ir
