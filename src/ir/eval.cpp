#include "ir/eval.h"

namespace pokeemu::ir {

namespace {

/**
 * Evaluate a statement expression against the temp environment.
 * Iterative where possible; expressions in generated programs are
 * shallow because intermediate values are bound to temps.
 */
u64
eval_with_env(const ExprRef &x, const std::vector<u64> &env)
{
    std::function<u64(const Expr &)> lookup = [&](const Expr &leaf) -> u64 {
        if (leaf.kind() == ExprKind::Temp)
            return env[leaf.temp_id()];
        panic("concrete evaluation hit free symbolic variable " +
              leaf.name());
    };
    return eval_expr(x, &lookup);
}

} // namespace

RunResult
run_concrete(const Program &program, ConcreteMemory &memory, u64 max_steps)
{
    std::vector<u64> env(program.num_temps(), 0);
    RunResult result;
    u32 pc = 0;

    while (result.steps < max_steps) {
        if (pc >= program.stmts.size())
            panic(program.name + ": fell off program end");
        const Stmt &s = program.stmts[pc];
        ++result.steps;
        switch (s.kind) {
          case StmtKind::Assign:
            env[s.temp] = eval_with_env(s.expr, env);
            ++pc;
            break;
          case StmtKind::Load: {
            const u32 addr =
                static_cast<u32>(eval_with_env(s.addr, env));
            env[s.temp] = memory.load(addr, s.size);
            ++pc;
            break;
          }
          case StmtKind::Store: {
            const u32 addr =
                static_cast<u32>(eval_with_env(s.addr, env));
            memory.store(addr, s.size, eval_with_env(s.expr, env));
            ++pc;
            break;
          }
          case StmtKind::CJmp: {
            const bool taken = eval_with_env(s.expr, env) != 0;
            pc = program.label_pos[taken ? s.target_true
                                         : s.target_false];
            break;
          }
          case StmtKind::Jmp:
            pc = program.label_pos[s.target_true];
            break;
          case StmtKind::Assume:
            if (eval_with_env(s.expr, env) == 0) {
                result.status = RunStatus::AssumeFailed;
                return result;
            }
            ++pc;
            break;
          case StmtKind::Halt:
            result.status = RunStatus::Halted;
            result.halt_code =
                static_cast<u32>(eval_with_env(s.expr, env));
            return result;
          case StmtKind::Comment:
            ++pc;
            break;
        }
    }
    result.status = RunStatus::StepLimit;
    return result;
}

} // namespace pokeemu::ir
