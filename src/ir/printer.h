/**
 * @file
 * Human-readable rendering of expressions and programs, used by the
 * developer-facing examples and debug logging.
 */
#ifndef POKEEMU_IR_PRINTER_H
#define POKEEMU_IR_PRINTER_H

#include <string>

#include "ir/stmt.h"

namespace pokeemu::ir {

/** Render an expression as a compact s-expression-ish string. */
std::string to_string(const ExprRef &expr);

/** Render one statement. */
std::string to_string(const Stmt &stmt);

/** Render a whole program with labels and statement indices. */
std::string to_string(const Program &program);

} // namespace pokeemu::ir

#endif // POKEEMU_IR_PRINTER_H
