#include "solver/solver.h"

#include <algorithm>

namespace pokeemu::solver {

Solver::Solver()
    : sat_(std::make_unique<SatSolver>()),
      blaster_(std::make_unique<BitBlaster>(*sat_))
{
}

Solver::~Solver() = default;

CheckResult
Solver::check(const std::vector<ir::ExprRef> &conditions)
{
    if (injector_) {
        injector_->maybe_fail(support::FaultSite::SolverQuery,
                              "solver.check");
    }
    const auto start = std::chrono::steady_clock::now();

    QueryKey key;
    const bool cacheable =
        memo_ != nullptr && QueryMemo::canonical_key(conditions, key);

    bool from_cache = false;
    CheckResult result = CheckResult::Unsat;
    if (cacheable) {
        if (const MemoEntry *entry = memo_->find(key, conditions)) {
            // Hit (exact or via model reuse): skip bit-blasting and
            // the SAT search; for Sat the stored model witnesses the
            // conjunction.
            result = entry->sat ? CheckResult::Sat : CheckResult::Unsat;
            from_cache = true;
            ++stats_.cache_hits;
            if (entry->sat)
                hit_model_ = entry->model;
            else
                hit_model_.reset();
        }
    }

    if (!from_cache) {
        hit_model_.reset();

        std::vector<Lit> assumptions;
        assumptions.reserve(conditions.size());
        bool trivially_false = false;
        for (const auto &cond : conditions) {
            assert(cond->width() == 1);
            if (cond->is_const()) {
                if (cond->value() == 0)
                    trivially_false = true;
                continue;
            }
            assumptions.push_back(blaster_->blast(cond)[0]);
        }

        if (trivially_false) {
            result = CheckResult::Unsat;
        } else {
            support::Deadline deadline =
                support::Deadline::with(budget_ms_, budget_steps_);
            support::Deadline *limit =
                deadline.limited() ? &deadline : nullptr;
            try {
                result =
                    sat_->solve(assumptions, limit) == SatResult::Sat
                    ? CheckResult::Sat
                    : CheckResult::Unsat;
            } catch (const support::FaultError &) {
                ++stats_.queries;
                ++stats_.timed_out;
                stats_.total_seconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                throw;
            }
        }

        if (cacheable) {
            ++stats_.cache_misses;
            MemoEntry entry;
            entry.sat = result == CheckResult::Sat;
            if (entry.sat) {
                std::vector<ir::ExprRef> vars;
                for (const auto &cond : conditions)
                    ir::Expr::collect_vars(cond, vars);
                for (const ir::ExprRef &v : vars)
                    entry.model[v->var_id()] = blaster_->model_value(v);
            }
            memo_->insert(key, std::move(entry));
        }
    }

    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    ++stats_.queries;
    if (result == CheckResult::Sat)
        ++stats_.sat;
    else
        ++stats_.unsat;
    stats_.total_seconds += secs;
    stats_.max_seconds = std::max(stats_.max_seconds, secs);
    return result;
}

u64
Solver::model_value(const ir::ExprRef &expr) const
{
    if (!hit_model_)
        return blaster_->model_value(expr);
    // Memoized Sat: variables of the cached query read its stored
    // model; anything else falls back to the last solved model so the
    // value is still deterministic.
    std::function<u64(const ir::Expr &)> lookup =
        [&](const ir::Expr &leaf) -> u64 {
        if (leaf.kind() != ir::ExprKind::Var)
            panic("model_value: Temp in solver expression");
        auto it = hit_model_->find(leaf.var_id());
        if (it != hit_model_->end())
            return it->second;
        const std::vector<Lit> *bits = blaster_->var_bits(leaf.var_id());
        if (bits == nullptr)
            return 0; // Never constrained: any value works.
        u64 v = 0;
        for (std::size_t i = 0; i < bits->size(); ++i) {
            const Lit l = (*bits)[i];
            const bool b = lit_sign(l) ? !sat_->model_value(lit_var(l))
                                       : sat_->model_value(lit_var(l));
            if (b)
                v |= u64{1} << i;
        }
        return v;
    };
    if (expr->is_var())
        return lookup(*expr);
    return ir::eval_expr(expr, &lookup);
}

u64
Assignment::eval(const ir::ExprRef &expr) const
{
    std::function<u64(const ir::Expr &)> lookup =
        [&](const ir::Expr &leaf) -> u64 {
        if (leaf.kind() != ir::ExprKind::Var)
            panic("Assignment::eval: Temp in stored expression");
        return get(leaf.var_id());
    };
    return ir::eval_expr(expr, &lookup);
}

bool
Assignment::satisfies(const std::vector<ir::ExprRef> &conditions) const
{
    for (const auto &cond : conditions) {
        if (eval(cond) == 0)
            return false;
    }
    return true;
}

} // namespace pokeemu::solver
