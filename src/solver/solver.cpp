#include "solver/solver.h"

#include <algorithm>

namespace pokeemu::solver {

Solver::Solver()
    : sat_(std::make_unique<SatSolver>()),
      blaster_(std::make_unique<BitBlaster>(*sat_))
{
}

Solver::~Solver() = default;

CheckResult
Solver::check(const std::vector<ir::ExprRef> &conditions)
{
    if (injector_) {
        injector_->maybe_fail(support::FaultSite::SolverQuery,
                              "solver.check");
    }
    const auto start = std::chrono::steady_clock::now();

    std::vector<Lit> assumptions;
    assumptions.reserve(conditions.size());
    bool trivially_false = false;
    for (const auto &cond : conditions) {
        assert(cond->width() == 1);
        if (cond->is_const()) {
            if (cond->value() == 0)
                trivially_false = true;
            continue;
        }
        assumptions.push_back(blaster_->blast(cond)[0]);
    }

    CheckResult result;
    if (trivially_false) {
        result = CheckResult::Unsat;
    } else {
        support::Deadline deadline =
            support::Deadline::with(budget_ms_, budget_steps_);
        support::Deadline *limit =
            deadline.limited() ? &deadline : nullptr;
        try {
            result = sat_->solve(assumptions, limit) == SatResult::Sat
                ? CheckResult::Sat
                : CheckResult::Unsat;
        } catch (const support::FaultError &) {
            ++stats_.queries;
            ++stats_.timed_out;
            stats_.total_seconds += std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() -
                                        start)
                                        .count();
            throw;
        }
    }

    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    ++stats_.queries;
    if (result == CheckResult::Sat)
        ++stats_.sat;
    else
        ++stats_.unsat;
    stats_.total_seconds += secs;
    stats_.max_seconds = std::max(stats_.max_seconds, secs);
    return result;
}

u64
Solver::model_value(const ir::ExprRef &expr) const
{
    return blaster_->model_value(expr);
}

u64
Assignment::eval(const ir::ExprRef &expr) const
{
    std::function<u64(const ir::Expr &)> lookup =
        [&](const ir::Expr &leaf) -> u64 {
        if (leaf.kind() != ir::ExprKind::Var)
            panic("Assignment::eval: Temp in stored expression");
        return get(leaf.var_id());
    };
    return ir::eval_expr(expr, &lookup);
}

bool
Assignment::satisfies(const std::vector<ir::ExprRef> &conditions) const
{
    for (const auto &cond : conditions) {
        if (eval(cond) == 0)
            return false;
    }
    return true;
}

} // namespace pokeemu::solver
