/**
 * @file
 * Solver-query memoization (the Empc observation: the symbolic-
 * execution hot loop is dominated by redundant path-condition solver
 * work that is memoizable across paths of one instruction).
 *
 * The explorer re-executes from the program entry for every path
 * (§3.1.2 re-execution instead of state forking), so sibling paths
 * re-submit feasibility queries over shared path-condition prefixes:
 * every descent into the non-model branch direction needs a witnessing
 * model for `prefix ∧ polarity` even when an earlier run already
 * solved exactly that conjunction. QueryMemo answers those in two
 * tiers:
 *
 *  1. Exact: verdict and, for Sat, the satisfying assignment over the
 *     query's variables, keyed by a canonical hash of the conjunction
 *     — a re-submitted conjunction becomes a table lookup.
 *  2. Model reuse (the FuzzBALL satisfying-assignment cache idiom): on
 *     an exact miss, recent cached models are evaluated against the
 *     new conjunction; any assignment that satisfies every conjunct
 *     witnesses Sat without touching the SAT solver. This is how a
 *     deeper query (ancestor prefix plus a few new conjuncts) reuses
 *     the ancestor's model.
 *
 * Scope and determinism: one QueryMemo belongs to one worker (no
 * locking), and entries are cleared at each unit-of-work boundary
 * (`begin_unit`). Unit scoping is what keeps a sharded campaign's
 * output byte-identical regardless of shard count: a cache entry
 * carried across units would hand unit B a model (and a SAT-solver
 * call history) that depends on which units happened to run earlier
 * on the same worker — i.e. on the shard layout. Cleared per unit,
 * every unit's exploration is a pure function of (instruction,
 * options). Hit/miss counters accumulate across units so a campaign
 * can report its overall memo effectiveness.
 */
#ifndef POKEEMU_SOLVER_MEMO_H
#define POKEEMU_SOLVER_MEMO_H

#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace pokeemu::solver {

/**
 * Canonical identity of one feasibility query: the sorted, deduplicated
 * structural hashes of the conjunction's non-constant conjuncts.
 * Sorting makes the key order-insensitive (a permuted prefix is the
 * same conjunction); keeping the full vector rather than one combined
 * hash means a collision needs two distinct conjuncts with equal
 * 64-bit structural hashes in the same slot, not merely two
 * conjunctions whose combined hashes collide.
 */
using QueryKey = std::vector<u64>;

/** One memoized verdict. The model covers exactly the variables that
 *  appear in the conjunction — enough to witness satisfiability. */
struct MemoEntry
{
    bool sat = false;
    std::unordered_map<u32, u64> model;
};

/** Cumulative (per-worker) and per-unit memo counters. */
struct MemoStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 unit_hits = 0;   ///< Since the last begin_unit().
    u64 unit_misses = 0;
};

/** See file comment. */
class QueryMemo
{
  public:
    /**
     * Canonicalize @p conditions into @p out. Returns false when the
     * conjunction contains a constant-false conjunct (trivially Unsat;
     * not worth caching). Constant-true conjuncts are dropped.
     */
    static bool canonical_key(const std::vector<ir::ExprRef> &conditions,
                              QueryKey &out);

    /**
     * Entry answering @p conditions (canonicalized as @p key), or
     * null. Tries the exact key first, then model reuse over the most
     * recently cached satisfying assignments (newest first — the
     * deepest prefixes are the likeliest to subsume a new extension);
     * a reused model is re-inserted under @p key, zero-filled for the
     * query's unconstrained variables, so the next identical query is
     * an exact hit. Counts one hit or one miss. Deterministic: the
     * scan order is a pure function of the unit's query history.
     */
    const MemoEntry *find(const QueryKey &key,
                          const std::vector<ir::ExprRef> &conditions);

    void insert(const QueryKey &key, MemoEntry entry);

    /**
     * Start a new unit of work: drop all entries (see file comment for
     * why) and reset the per-unit counters; cumulative counters are
     * kept.
     */
    void begin_unit();

    const MemoStats &stats() const { return stats_; }
    std::size_t entries() const { return entries_.size(); }

  private:
    struct KeyHash
    {
        std::size_t operator()(const QueryKey &key) const;
    };

    /** Models tried per exact miss; bounds reuse cost on units with
     *  hundreds of queries while keeping the common subsumption wins
     *  (a run's own ancestors are always the newest entries). */
    static constexpr std::size_t kMaxModelScan = 16;

    std::unordered_map<QueryKey, MemoEntry, KeyHash> entries_;
    /** Sat entries in insertion order (node-based map: pointers are
     *  stable); cleared with entries_ at unit boundaries. */
    std::vector<const MemoEntry *> models_;
    MemoStats stats_;
};

} // namespace pokeemu::solver

#endif // POKEEMU_SOLVER_MEMO_H
