#include "solver/memo.h"

#include <algorithm>
#include <functional>

namespace pokeemu::solver {

namespace {

/** splitmix64 finalizer (same mixer the fingerprint code uses). */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::size_t
QueryMemo::KeyHash::operator()(const QueryKey &key) const
{
    u64 h = 0x706f6b656d656d6fULL; // "pokememo"
    for (u64 v : key)
        h = mix64(h ^ mix64(v));
    return static_cast<std::size_t>(h);
}

bool
QueryMemo::canonical_key(const std::vector<ir::ExprRef> &conditions,
                         QueryKey &out)
{
    out.clear();
    out.reserve(conditions.size());
    for (const ir::ExprRef &cond : conditions) {
        if (cond->is_const()) {
            if (cond->value() == 0)
                return false;
            continue; // Constant-true: contributes nothing.
        }
        out.push_back(cond->hash());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return true;
}

namespace {

/** True when @p model (absent variables read 0) satisfies every
 *  conjunct. Conditions reaching the solver are fully resolved, so a
 *  Temp leaf means reuse is not applicable, not a bug. */
bool
model_satisfies(const std::unordered_map<u32, u64> &model,
                const std::vector<ir::ExprRef> &conditions)
{
    bool resolved = true;
    const std::function<u64(const ir::Expr &)> read =
        [&](const ir::Expr &leaf) -> u64 {
        if (leaf.kind() != ir::ExprKind::Var) {
            resolved = false;
            return 0;
        }
        auto it = model.find(leaf.var_id());
        return it == model.end() ? 0 : it->second;
    };
    for (const ir::ExprRef &cond : conditions) {
        if (ir::eval_expr(cond, &read) == 0 || !resolved)
            return false;
    }
    return true;
}

} // namespace

const MemoEntry *
QueryMemo::find(const QueryKey &key,
                const std::vector<ir::ExprRef> &conditions)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++stats_.hits;
        ++stats_.unit_hits;
        return &it->second;
    }

    // Model reuse: newest first — within a run the deepest solved
    // prefix is the likeliest to satisfy its own extension.
    const std::size_t scan = std::min(models_.size(), kMaxModelScan);
    for (std::size_t i = 0; i < scan; ++i) {
        const MemoEntry *cached = models_[models_.size() - 1 - i];
        if (!model_satisfies(cached->model, conditions))
            continue;
        MemoEntry entry;
        entry.sat = true;
        entry.model = cached->model;
        // Zero-fill the query's variables the donor never constrained:
        // model_satisfies read them as 0, so the served model must
        // pin them to 0 to stay a witness.
        std::vector<ir::ExprRef> vars;
        for (const ir::ExprRef &cond : conditions)
            ir::Expr::collect_vars(cond, vars);
        for (const ir::ExprRef &v : vars)
            entry.model.emplace(v->var_id(), 0);
        ++stats_.hits;
        ++stats_.unit_hits;
        insert(key, std::move(entry));
        return &entries_.find(key)->second;
    }

    ++stats_.misses;
    ++stats_.unit_misses;
    return nullptr;
}

void
QueryMemo::insert(const QueryKey &key, MemoEntry entry)
{
    const auto [it, inserted] = entries_.emplace(key, std::move(entry));
    if (inserted && it->second.sat)
        models_.push_back(&it->second);
}

void
QueryMemo::begin_unit()
{
    entries_.clear();
    models_.clear();
    stats_.unit_hits = 0;
    stats_.unit_misses = 0;
}

} // namespace pokeemu::solver
