#include "solver/bitblast.h"

namespace pokeemu::solver {

using ir::BinOpKind;
using ir::CastKind;
using ir::Expr;
using ir::ExprKind;
using ir::ExprRef;
using ir::UnOpKind;

BitBlaster::BitBlaster(SatSolver &sat) : sat_(sat)
{
    const SatVar t = sat_.new_var();
    true_lit_ = mk_lit(t, false);
    sat_.add_clause({true_lit_});
}

Lit
BitBlaster::fresh()
{
    return mk_lit(sat_.new_var(), false);
}

Lit
BitBlaster::lit_const(bool b) const
{
    return b ? true_lit_ : lit_neg(true_lit_);
}

Lit
BitBlaster::gate_and(Lit a, Lit b)
{
    if (a == lit_const(false) || b == lit_const(false))
        return lit_const(false);
    if (a == lit_const(true))
        return b;
    if (b == lit_const(true))
        return a;
    if (a == b)
        return a;
    if (a == lit_neg(b))
        return lit_const(false);
    const Lit g = fresh();
    sat_.add_clause({lit_neg(g), a});
    sat_.add_clause({lit_neg(g), b});
    sat_.add_clause({g, lit_neg(a), lit_neg(b)});
    return g;
}

Lit
BitBlaster::gate_or(Lit a, Lit b)
{
    return lit_neg(gate_and(lit_neg(a), lit_neg(b)));
}

Lit
BitBlaster::gate_xor(Lit a, Lit b)
{
    if (a == lit_const(false))
        return b;
    if (b == lit_const(false))
        return a;
    if (a == lit_const(true))
        return lit_neg(b);
    if (b == lit_const(true))
        return lit_neg(a);
    if (a == b)
        return lit_const(false);
    if (a == lit_neg(b))
        return lit_const(true);
    const Lit g = fresh();
    sat_.add_clause({lit_neg(g), a, b});
    sat_.add_clause({lit_neg(g), lit_neg(a), lit_neg(b)});
    sat_.add_clause({g, lit_neg(a), b});
    sat_.add_clause({g, a, lit_neg(b)});
    return g;
}

Lit
BitBlaster::gate_mux(Lit cond, Lit t, Lit f)
{
    if (cond == lit_const(true))
        return t;
    if (cond == lit_const(false))
        return f;
    if (t == f)
        return t;
    const Lit g = fresh();
    sat_.add_clause({lit_neg(g), lit_neg(cond), t});
    sat_.add_clause({lit_neg(g), cond, f});
    sat_.add_clause({g, lit_neg(cond), lit_neg(t)});
    sat_.add_clause({g, cond, lit_neg(f)});
    return g;
}

std::pair<Lit, Lit>
BitBlaster::full_adder(Lit a, Lit b, Lit cin)
{
    const Lit sum = gate_xor(gate_xor(a, b), cin);
    const Lit carry =
        gate_or(gate_and(a, b), gate_and(cin, gate_xor(a, b)));
    return {sum, carry};
}

std::vector<Lit>
BitBlaster::add_vec(const std::vector<Lit> &a, const std::vector<Lit> &b,
                    Lit cin)
{
    assert(a.size() == b.size());
    std::vector<Lit> out(a.size());
    Lit carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        auto [sum, cout] = full_adder(a[i], b[i], carry);
        out[i] = sum;
        carry = cout;
    }
    return out;
}

std::vector<Lit>
BitBlaster::neg_vec(const std::vector<Lit> &a)
{
    std::vector<Lit> inv(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        inv[i] = lit_neg(a[i]);
    std::vector<Lit> zero(a.size(), lit_const(false));
    return add_vec(inv, zero, lit_const(true));
}

std::vector<Lit>
BitBlaster::mul_vec(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    const std::size_t n = a.size();
    std::vector<Lit> acc(n, lit_const(false));
    for (std::size_t i = 0; i < n; ++i) {
        // Partial product of a shifted left by i, gated by b[i].
        std::vector<Lit> pp(n, lit_const(false));
        for (std::size_t j = i; j < n; ++j)
            pp[j] = gate_and(a[j - i], b[i]);
        acc = add_vec(acc, pp, lit_const(false));
    }
    return acc;
}

Lit
BitBlaster::ult_vec(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    // MSB-first comparator chain: lt_i = (~a_i & b_i) | (a_i==b_i & lt_{i-1})
    Lit lt = lit_const(false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Lit bit_lt = gate_and(lit_neg(a[i]), b[i]);
        const Lit bit_eq = lit_neg(gate_xor(a[i], b[i]));
        lt = gate_or(bit_lt, gate_and(bit_eq, lt));
    }
    return lt;
}

Lit
BitBlaster::eq_vec(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    Lit acc = lit_const(true);
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = gate_and(acc, lit_neg(gate_xor(a[i], b[i])));
    return acc;
}

std::vector<Lit>
BitBlaster::mux_vec(Lit cond, const std::vector<Lit> &t,
                    const std::vector<Lit> &f)
{
    assert(t.size() == f.size());
    std::vector<Lit> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = gate_mux(cond, t[i], f[i]);
    return out;
}

void
BitBlaster::divmod_vec(const std::vector<Lit> &a,
                       const std::vector<Lit> &b,
                       std::vector<Lit> &quotient,
                       std::vector<Lit> &remainder)
{
    // Restoring long division, MSB first. With b == 0 this naturally
    // yields q = ~0 and r = a, matching the IR's total semantics.
    const std::size_t n = a.size();
    quotient.assign(n, lit_const(false));
    std::vector<Lit> r(n, lit_const(false));
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = n - 1 - step;
        // r = (r << 1) | a[i]
        for (std::size_t j = n - 1; j > 0; --j)
            r[j] = r[j - 1];
        r[0] = a[i];
        // If r >= b: r -= b, q[i] = 1.
        const Lit ge = lit_neg(ult_vec(r, b));
        std::vector<Lit> diff = add_vec(r, neg_vec(b), lit_const(false));
        r = mux_vec(ge, diff, r);
        quotient[i] = ge;
    }
    remainder = r;
}

std::vector<Lit>
BitBlaster::shift_vec(const std::vector<Lit> &a,
                      const std::vector<Lit> &amount, BinOpKind kind)
{
    const std::size_t n = a.size();
    const Lit sign = a[n - 1];
    const Lit fill =
        kind == BinOpKind::AShr ? sign : lit_const(false);

    // Barrel shifter over the log2(n)+1 low amount bits.
    unsigned stages = 0;
    while ((std::size_t{1} << stages) < n)
        ++stages;
    std::vector<Lit> cur = a;
    for (unsigned s = 0; s <= stages && s < amount.size(); ++s) {
        const std::size_t dist = std::size_t{1} << s;
        std::vector<Lit> shifted(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (kind == BinOpKind::Shl) {
                shifted[i] =
                    i >= dist ? cur[i - dist] : lit_const(false);
            } else {
                shifted[i] = i + dist < n ? cur[i + dist] : fill;
            }
        }
        if (dist >= n) {
            // Shifting by >= n zeroes (or sign-fills) everything.
            std::vector<Lit> all(n, fill);
            shifted = all;
        }
        cur = mux_vec(amount[s], shifted, cur);
    }

    // Any higher amount bit set means the distance is >= n.
    Lit big = lit_const(false);
    for (std::size_t i = stages + 1; i < amount.size(); ++i)
        big = gate_or(big, amount[i]);
    // Also the covered bits can encode values >= n if n is not a power
    // of two; detect amount >= n with a comparator on the low bits.
    std::vector<Lit> n_const(amount.size());
    for (std::size_t i = 0; i < amount.size(); ++i)
        n_const[i] = lit_const((n >> i) & 1);
    big = gate_or(big, lit_neg(ult_vec(amount, n_const)));
    std::vector<Lit> overflowed(n, fill);
    return mux_vec(big, overflowed, cur);
}

const std::vector<Lit> &
BitBlaster::blast(const ExprRef &expr)
{
    pinned_.push_back(expr);
    auto it = cache_.find(expr.get());
    if (it != cache_.end())
        return it->second;
    std::vector<Lit> bits = lower(expr);
    auto [ins, _] = cache_.emplace(expr.get(), std::move(bits));
    return ins->second;
}

std::vector<Lit>
BitBlaster::lower(const ExprRef &e)
{
    auto found = cache_.find(e.get());
    if (found != cache_.end())
        return found->second;

    std::vector<Lit> out;
    switch (e->kind()) {
      case ExprKind::Const: {
        out.resize(e->width());
        for (unsigned i = 0; i < e->width(); ++i)
            out[i] = lit_const((e->value() >> i) & 1);
        break;
      }
      case ExprKind::Var: {
        auto vit = var_cache_.find(e->var_id());
        if (vit != var_cache_.end()) {
            out = vit->second;
            break;
        }
        out.resize(e->width());
        for (unsigned i = 0; i < e->width(); ++i)
            out[i] = fresh();
        var_cache_[e->var_id()] = out;
        break;
      }
      case ExprKind::Temp:
        panic("bitblast: Temp leaked into solver expression");
      case ExprKind::UnOp: {
        std::vector<Lit> a = lower(e->a());
        if (e->unop() == UnOpKind::Not) {
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                out[i] = lit_neg(a[i]);
        } else {
            out = neg_vec(a);
        }
        break;
      }
      case ExprKind::BinOp: {
        std::vector<Lit> a = lower(e->a());
        std::vector<Lit> b = lower(e->b());
        switch (e->binop()) {
          case BinOpKind::Add:
            out = add_vec(a, b, lit_const(false));
            break;
          case BinOpKind::Sub: {
            std::vector<Lit> binv(b.size());
            for (std::size_t i = 0; i < b.size(); ++i)
                binv[i] = lit_neg(b[i]);
            out = add_vec(a, binv, lit_const(true));
            break;
          }
          case BinOpKind::Mul:
            out = mul_vec(a, b);
            break;
          case BinOpKind::UDiv:
          case BinOpKind::URem: {
            std::vector<Lit> q, r;
            divmod_vec(a, b, q, r);
            out = e->binop() == BinOpKind::UDiv ? q : r;
            break;
          }
          case BinOpKind::SDiv:
          case BinOpKind::SRem: {
            const Lit sa = a.back();
            const Lit sb = b.back();
            std::vector<Lit> abs_a = mux_vec(sa, neg_vec(a), a);
            std::vector<Lit> abs_b = mux_vec(sb, neg_vec(b), b);
            std::vector<Lit> q, r;
            divmod_vec(abs_a, abs_b, q, r);
            if (e->binop() == BinOpKind::SDiv) {
                const Lit neg = gate_xor(sa, sb);
                out = mux_vec(neg, neg_vec(q), q);
                // Division by zero must yield all ones regardless of
                // the dividend's sign.
                std::vector<Lit> zero(b.size(), lit_const(false));
                std::vector<Lit> ones(b.size(), lit_const(true));
                out = mux_vec(eq_vec(b, zero), ones, out);
            } else {
                // Remainder takes the dividend's sign.
                out = mux_vec(sa, neg_vec(r), r);
                std::vector<Lit> zero(b.size(), lit_const(false));
                out = mux_vec(eq_vec(b, zero), a, out);
            }
            break;
          }
          case BinOpKind::And:
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                out[i] = gate_and(a[i], b[i]);
            break;
          case BinOpKind::Or:
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                out[i] = gate_or(a[i], b[i]);
            break;
          case BinOpKind::Xor:
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                out[i] = gate_xor(a[i], b[i]);
            break;
          case BinOpKind::Shl:
          case BinOpKind::LShr:
          case BinOpKind::AShr:
            out = shift_vec(a, b, e->binop());
            break;
          case BinOpKind::Eq:
            out = {eq_vec(a, b)};
            break;
          case BinOpKind::Ne:
            out = {lit_neg(eq_vec(a, b))};
            break;
          case BinOpKind::ULt:
            out = {ult_vec(a, b)};
            break;
          case BinOpKind::ULe:
            out = {lit_neg(ult_vec(b, a))};
            break;
          case BinOpKind::SLt: {
            // Signed comparison: flip sign bits and compare unsigned.
            std::vector<Lit> af = a, bf = b;
            af.back() = lit_neg(af.back());
            bf.back() = lit_neg(bf.back());
            out = {ult_vec(af, bf)};
            break;
          }
          case BinOpKind::SLe: {
            std::vector<Lit> af = a, bf = b;
            af.back() = lit_neg(af.back());
            bf.back() = lit_neg(bf.back());
            out = {lit_neg(ult_vec(bf, af))};
            break;
          }
          case BinOpKind::Concat:
            out = b; // Low part first (LSB-first representation).
            out.insert(out.end(), a.begin(), a.end());
            break;
        }
        break;
      }
      case ExprKind::Cast: {
        std::vector<Lit> a = lower(e->a());
        switch (e->cast()) {
          case CastKind::ZExt:
            out = a;
            out.resize(e->width(), lit_const(false));
            break;
          case CastKind::SExt:
            out = a;
            out.resize(e->width(), a.back());
            break;
          case CastKind::Extract:
            out.assign(a.begin() + e->extract_lo(),
                       a.begin() + e->extract_lo() + e->width());
            break;
        }
        break;
      }
      case ExprKind::Ite: {
        std::vector<Lit> c = lower(e->a());
        std::vector<Lit> t = lower(e->b());
        std::vector<Lit> f = lower(e->c());
        out = mux_vec(c[0], t, f);
        break;
      }
    }
    assert(out.size() == e->width());
    cache_.emplace(e.get(), out);
    return out;
}

u64
BitBlaster::model_value(const ExprRef &expr) const
{
    auto bits_value = [&](const std::vector<Lit> &bits) {
        u64 v = 0;
        for (std::size_t i = 0; i < bits.size(); ++i) {
            const bool b = lit_sign(bits[i])
                ? !sat_.model_value(lit_var(bits[i]))
                : sat_.model_value(lit_var(bits[i]));
            if (b)
                v |= u64{1} << i;
        }
        return v;
    };

    auto it = cache_.find(expr.get());
    if (it != cache_.end())
        return bits_value(it->second);
    if (expr->is_var()) {
        auto vit = var_cache_.find(expr->var_id());
        if (vit != var_cache_.end())
            return bits_value(vit->second);
        return 0; // Never constrained: any value works.
    }
    // Fall back to evaluating over the model values of the variables.
    std::function<u64(const Expr &)> lookup =
        [&](const Expr &leaf) -> u64 {
        if (leaf.kind() != ExprKind::Var)
            panic("model_value: Temp in solver expression");
        auto vit = var_cache_.find(leaf.var_id());
        if (vit == var_cache_.end())
            return 0;
        return bits_value(vit->second);
    };
    return ir::eval_expr(expr, &lookup);
}

const std::vector<Lit> *
BitBlaster::var_bits(u32 var_id) const
{
    auto it = var_cache_.find(var_id);
    return it == var_cache_.end() ? nullptr : &it->second;
}

} // namespace pokeemu::solver
