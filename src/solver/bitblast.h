/**
 * @file
 * Tseitin bit-blasting of bit-vector expressions to CNF.
 *
 * Together with the CDCL core in sat.h this forms PokeEMU's decision
 * procedure for quantifier-free fixed-width bit-vector formulas — the
 * role STP and Z3 play for FuzzBALL (paper §3.1.2). Every expression
 * node is lowered once per solver instance (pointer-keyed cache; the
 * expression factories share subtrees aggressively, so caching is
 * effective) into one SAT variable per bit.
 */
#ifndef POKEEMU_SOLVER_BITBLAST_H
#define POKEEMU_SOLVER_BITBLAST_H

#include <unordered_map>
#include <vector>

#include "ir/expr.h"
#include "solver/sat.h"

namespace pokeemu::solver {

/** Lowers expressions into an owned SatSolver's clause database. */
class BitBlaster
{
  public:
    explicit BitBlaster(SatSolver &sat);

    /**
     * Lower @p expr; returns one literal per bit, LSB first. For 1-bit
     * expressions (conditions) the single literal can be used directly
     * as an assumption.
     */
    const std::vector<Lit> &blast(const ir::ExprRef &expr);

    /** Literal that is constant-true in every model. */
    Lit true_lit() const { return true_lit_; }

    /**
     * Read back the model value of @p expr (typically a Var) after a
     * Sat result; bits never mentioned in any constraint default to 0.
     */
    u64 model_value(const ir::ExprRef &expr) const;

    /** Bits of the Var with identity @p var_id, if it was ever blasted. */
    const std::vector<Lit> *var_bits(u32 var_id) const;

  private:
    Lit fresh();
    Lit lit_const(bool b) const;
    /** Tseitin AND gate: returns literal g with g <-> a & b. */
    Lit gate_and(Lit a, Lit b);
    Lit gate_or(Lit a, Lit b);
    Lit gate_xor(Lit a, Lit b);
    /** Mux: cond ? t : f. */
    Lit gate_mux(Lit cond, Lit t, Lit f);
    /** Full adder; returns (sum, carry_out). */
    std::pair<Lit, Lit> full_adder(Lit a, Lit b, Lit cin);

    std::vector<Lit> add_vec(const std::vector<Lit> &a,
                             const std::vector<Lit> &b, Lit cin);
    std::vector<Lit> neg_vec(const std::vector<Lit> &a);
    std::vector<Lit> mul_vec(const std::vector<Lit> &a,
                             const std::vector<Lit> &b);
    /** Unsigned divide/remainder via restoring long division. */
    void divmod_vec(const std::vector<Lit> &a, const std::vector<Lit> &b,
                    std::vector<Lit> &quotient,
                    std::vector<Lit> &remainder);
    std::vector<Lit> shift_vec(const std::vector<Lit> &a,
                               const std::vector<Lit> &amount,
                               ir::BinOpKind kind);
    Lit ult_vec(const std::vector<Lit> &a, const std::vector<Lit> &b);
    Lit eq_vec(const std::vector<Lit> &a, const std::vector<Lit> &b);
    std::vector<Lit> mux_vec(Lit cond, const std::vector<Lit> &t,
                             const std::vector<Lit> &f);

    std::vector<Lit> lower(const ir::ExprRef &expr);

    SatSolver &sat_;
    Lit true_lit_;
    std::unordered_map<const ir::Expr *, std::vector<Lit>> cache_;
    /** Keep blasted roots alive so pointer keys stay valid. */
    std::vector<ir::ExprRef> pinned_;
    std::unordered_map<u32, std::vector<Lit>> var_cache_;
};

} // namespace pokeemu::solver

#endif // POKEEMU_SOLVER_BITBLAST_H
