/**
 * @file
 * A CDCL (conflict-driven clause learning) SAT solver.
 *
 * This is the bottom of the decision-procedure stack that replaces
 * STP/Z3 in the paper (§3.1.2): bit-vector path conditions are
 * bit-blasted (see bitblast.h) into CNF over these variables. The
 * solver implements the standard modern recipe: two-literal watches,
 * first-UIP conflict analysis with clause learning, VSIDS-style
 * activity decision heuristic, phase saving, geometric restarts, and
 * MiniSat-style solving under assumptions (which is what makes the
 * exploration loop's thousands of incremental feasibility queries
 * cheap).
 */
#ifndef POKEEMU_SOLVER_SAT_H
#define POKEEMU_SOLVER_SAT_H

#include <vector>

#include "support/common.h"
#include "support/fault.h"

namespace pokeemu::solver {

/**
 * A literal: positive var v is encoded as 2v, negated as 2v+1.
 * Variables are dense indices starting at 0.
 */
using Lit = u32;
using SatVar = u32;

constexpr Lit
mk_lit(SatVar v, bool negated)
{
    return (v << 1) | (negated ? 1 : 0);
}

constexpr Lit lit_neg(Lit l) { return l ^ 1; }
constexpr SatVar lit_var(Lit l) { return l >> 1; }
constexpr bool lit_sign(Lit l) { return (l & 1) != 0; }

enum class SatResult : u8 { Sat, Unsat };

/** See file comment. */
class SatSolver
{
  public:
    SatSolver();

    /** Allocate a fresh variable and return its index. */
    SatVar new_var();

    u32 num_vars() const { return static_cast<u32>(assign_.size()); }

    /**
     * Add a clause (disjunction of literals). Returns false if the
     * solver is already known unsatisfiable at the root level.
     */
    bool add_clause(std::vector<Lit> clause);

    /**
     * Solve under the given assumption literals. The assumptions are
     * treated as temporary unit clauses; learned clauses persist
     * across calls, which is what gives incrementality.
     *
     * A non-null @p deadline is consumed once per search-loop
     * iteration; when it expires, the query aborts with a FaultError
     * classed SolverTimeout (the solver itself stays usable — learned
     * clauses are kept and the next query starts clean).
     */
    SatResult solve(const std::vector<Lit> &assumptions = {},
                    support::Deadline *deadline = nullptr);

    /** Model value of @p v after a Sat result. */
    bool model_value(SatVar v) const;

    /// @name Statistics
    /// @{
    u64 num_conflicts() const { return conflicts_; }
    u64 num_decisions() const { return decisions_; }
    u64 num_propagations() const { return propagations_; }
    /// @}

  private:
    enum : u8 { kUndef = 2 };

    struct Clause
    {
        std::vector<Lit> lits;
        bool learned = false;
    };

    struct Watch
    {
        u32 clause_index;
        Lit blocker;
    };

    bool value_is(Lit l, bool expected) const;
    u8 lit_value(Lit l) const;
    void enqueue(Lit l, s32 reason);
    s32 propagate();
    void analyze(s32 conflict, std::vector<Lit> &learned,
                 u32 &backtrack_level);
    void backtrack(u32 level);
    Lit pick_branch();
    void bump_var(SatVar v);
    void decay_activities();
    void attach_clause(u32 ci);

    std::vector<Clause> clauses_;
    std::vector<std::vector<Watch>> watches_; ///< Indexed by literal.
    std::vector<u8> assign_;      ///< Per var: 0/1/kUndef.
    std::vector<u8> phase_;       ///< Saved phase per var.
    std::vector<u32> level_;      ///< Decision level per var.
    std::vector<s32> reason_;     ///< Clause index or -1 per var.
    std::vector<Lit> trail_;
    std::vector<u32> trail_lim_;  ///< Trail size at each decision level.
    u32 qhead_ = 0;
    std::vector<double> activity_;
    double activity_inc_ = 1.0;
    std::vector<u8> seen_;        ///< Scratch for conflict analysis.
    bool root_conflict_ = false;
    u64 conflicts_ = 0;
    u64 decisions_ = 0;
    u64 propagations_ = 0;
};

} // namespace pokeemu::solver

#endif // POKEEMU_SOLVER_SAT_H
