#include "solver/sat.h"

#include <algorithm>
#include <cmath>

namespace pokeemu::solver {

SatSolver::SatSolver() = default;

SatVar
SatSolver::new_var()
{
    const SatVar v = num_vars();
    assign_.push_back(kUndef);
    phase_.push_back(0);
    level_.push_back(0);
    reason_.push_back(-1);
    activity_.push_back(0.0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    return v;
}

u8
SatSolver::lit_value(Lit l) const
{
    const u8 a = assign_[lit_var(l)];
    if (a == kUndef)
        return kUndef;
    return lit_sign(l) ? (a ^ 1) : a;
}

bool
SatSolver::value_is(Lit l, bool expected) const
{
    return lit_value(l) == (expected ? 1 : 0);
}

void
SatSolver::attach_clause(u32 ci)
{
    const auto &lits = clauses_[ci].lits;
    assert(lits.size() >= 2);
    watches_[lit_neg(lits[0])].push_back({ci, lits[1]});
    watches_[lit_neg(lits[1])].push_back({ci, lits[0]});
}

bool
SatSolver::add_clause(std::vector<Lit> clause)
{
    if (root_conflict_)
        return false;
    // A previous solve() may have left the trail at a decision level
    // (models are read from the trail); new clauses go in at the root.
    backtrack(0);

    // Root-level simplification: drop false literals, detect tautology
    // and duplicates.
    std::sort(clause.begin(), clause.end());
    std::vector<Lit> out;
    Lit prev = ~Lit{0};
    for (Lit l : clause) {
        if (l == prev)
            continue;
        if (!out.empty() && l == lit_neg(prev))
            return true; // Tautology.
        if (lit_value(l) == 1)
            return true; // Already satisfied at root.
        if (lit_value(l) == 0)
            continue; // False at root; drop literal.
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        root_conflict_ = true;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], -1);
        if (propagate() != -1) {
            root_conflict_ = true;
            return false;
        }
        return true;
    }
    clauses_.push_back({std::move(out), false});
    attach_clause(static_cast<u32>(clauses_.size() - 1));
    return true;
}

void
SatSolver::enqueue(Lit l, s32 reason)
{
    assert(lit_value(l) == kUndef);
    const SatVar v = lit_var(l);
    assign_[v] = lit_sign(l) ? 0 : 1;
    phase_[v] = assign_[v];
    level_[v] = static_cast<u32>(trail_lim_.size());
    reason_[v] = reason;
    trail_.push_back(l);
}

s32
SatSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++propagations_;
        auto &watch_list = watches_[p];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < watch_list.size(); ++i) {
            const Watch w = watch_list[i];
            // Fast path: blocker already true.
            if (lit_value(w.blocker) == 1) {
                watch_list[keep++] = w;
                continue;
            }
            Clause &c = clauses_[w.clause_index];
            auto &lits = c.lits;
            // Normalize so lits[0] is the other watched literal.
            const Lit false_lit = lit_neg(p);
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            assert(lits[1] == false_lit);
            if (lit_value(lits[0]) == 1) {
                watch_list[keep++] = {w.clause_index, lits[0]};
                continue;
            }
            // Look for a new literal to watch.
            bool moved = false;
            for (std::size_t k = 2; k < lits.size(); ++k) {
                if (lit_value(lits[k]) != 0) {
                    std::swap(lits[1], lits[k]);
                    watches_[lit_neg(lits[1])].push_back(
                        {w.clause_index, lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Clause is unit or conflicting.
            watch_list[keep++] = w;
            if (lit_value(lits[0]) == 0) {
                // Conflict: restore untraversed watches and bail.
                for (std::size_t j = i + 1; j < watch_list.size(); ++j)
                    watch_list[keep++] = watch_list[j];
                watch_list.resize(keep);
                qhead_ = static_cast<u32>(trail_.size());
                return static_cast<s32>(w.clause_index);
            }
            enqueue(lits[0], static_cast<s32>(w.clause_index));
        }
        watch_list.resize(keep);
    }
    return -1;
}

void
SatSolver::bump_var(SatVar v)
{
    activity_[v] += activity_inc_;
    if (activity_[v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        activity_inc_ *= 1e-100;
    }
}

void
SatSolver::decay_activities()
{
    activity_inc_ /= 0.95;
}

void
SatSolver::analyze(s32 conflict, std::vector<Lit> &learned,
                   u32 &backtrack_level)
{
    learned.clear();
    learned.push_back(0); // Placeholder for the asserting literal.

    u32 counter = 0;
    Lit p = ~Lit{0};
    s32 reason_clause = conflict;
    std::size_t index = trail_.size();
    const u32 current_level = static_cast<u32>(trail_lim_.size());

    do {
        assert(reason_clause >= 0);
        const Clause &c = clauses_[reason_clause];
        const std::size_t start = (p == ~Lit{0}) ? 0 : 1;
        for (std::size_t k = start; k < c.lits.size(); ++k) {
            const Lit q = c.lits[k];
            const SatVar v = lit_var(q);
            if (seen_[v] || level_[v] == 0)
                continue;
            seen_[v] = 1;
            bump_var(v);
            if (level_[v] >= current_level) {
                ++counter;
            } else {
                learned.push_back(q);
            }
        }
        // Find the next seen literal on the trail.
        while (!seen_[lit_var(trail_[index - 1])])
            --index;
        --index;
        p = trail_[index];
        seen_[lit_var(p)] = 0;
        reason_clause = reason_[lit_var(p)];
        --counter;
    } while (counter > 0);
    learned[0] = lit_neg(p);

    // Compute the backtrack level (second-highest level in the clause)
    // and move that literal to position 1 for watching.
    if (learned.size() == 1) {
        backtrack_level = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learned.size(); ++i) {
            if (level_[lit_var(learned[i])] >
                level_[lit_var(learned[max_i])]) {
                max_i = i;
            }
        }
        std::swap(learned[1], learned[max_i]);
        backtrack_level = level_[lit_var(learned[1])];
    }
    for (std::size_t i = 1; i < learned.size(); ++i)
        seen_[lit_var(learned[i])] = 0;
}

void
SatSolver::backtrack(u32 target_level)
{
    if (trail_lim_.size() <= target_level)
        return;
    const u32 bound = trail_lim_[target_level];
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const SatVar v = lit_var(trail_[i - 1]);
        assign_[v] = kUndef;
        reason_[v] = -1;
    }
    trail_.resize(bound);
    trail_lim_.resize(target_level);
    qhead_ = bound;
}

Lit
SatSolver::pick_branch()
{
    SatVar best = ~SatVar{0};
    double best_act = -1.0;
    for (SatVar v = 0; v < num_vars(); ++v) {
        if (assign_[v] == kUndef && activity_[v] > best_act) {
            best = v;
            best_act = activity_[v];
        }
    }
    if (best == ~SatVar{0})
        return ~Lit{0};
    return mk_lit(best, phase_[best] == 0);
}

SatResult
SatSolver::solve(const std::vector<Lit> &assumptions,
                 support::Deadline *deadline)
{
    if (root_conflict_)
        return SatResult::Unsat;
    backtrack(0);
    if (propagate() != -1) {
        root_conflict_ = true;
        return SatResult::Unsat;
    }

    u64 conflict_budget = 256;
    u64 conflicts_this_restart = 0;

    for (;;) {
        if (deadline && deadline->consume()) {
            // Leave the solver reusable: learned clauses stay, the
            // trail unwinds to the root before the next query anyway.
            backtrack(0);
            throw support::FaultError(
                support::FaultClass::SolverTimeout,
                "sat: query deadline expired after " +
                    std::to_string(conflicts_) + " total conflicts");
        }
        const s32 conflict = propagate();
        if (conflict != -1) {
            ++conflicts_;
            ++conflicts_this_restart;
            if (trail_lim_.empty()) {
                root_conflict_ = true;
                return SatResult::Unsat;
            }
            // Conflict below or at the assumption prefix: UNSAT under
            // these assumptions.
            std::vector<Lit> learned;
            u32 bt_level = 0;
            analyze(conflict, learned, bt_level);
            decay_activities();
            if (trail_lim_.size() <= assumptions.size()) {
                // The conflict depends on the assumptions only when we
                // cannot backtrack above them; analyze() already gave
                // us a clause, apply it if it is above the prefix.
                if (bt_level < assumptions.size()) {
                    // The conflict depends on the assumption prefix:
                    // UNSAT for this query. We deliberately do not
                    // attach the learned clause here — after
                    // backtrack(0) its watched literals may already be
                    // false at the root, which would break the watch
                    // invariant. Unit clauses are safe to keep.
                    backtrack(0);
                    if (learned.size() == 1) {
                        if (lit_value(learned[0]) == kUndef)
                            enqueue(learned[0], -1);
                        else if (lit_value(learned[0]) == 0)
                            root_conflict_ = true;
                    }
                    return SatResult::Unsat;
                }
            }
            backtrack(bt_level);
            if (learned.size() == 1) {
                if (lit_value(learned[0]) == kUndef) {
                    enqueue(learned[0], -1);
                } else if (lit_value(learned[0]) == 0) {
                    root_conflict_ = true;
                    return SatResult::Unsat;
                }
            } else {
                clauses_.push_back({learned, true});
                const u32 ci = static_cast<u32>(clauses_.size() - 1);
                attach_clause(ci);
                enqueue(learned[0], static_cast<s32>(ci));
            }
            continue;
        }

        // Restart policy: geometric, keeping assumptions in place.
        if (conflicts_this_restart >= conflict_budget) {
            conflicts_this_restart = 0;
            conflict_budget += conflict_budget / 2;
            backtrack(0);
        }

        // Re-establish assumptions first.
        if (trail_lim_.size() < assumptions.size()) {
            const Lit a = assumptions[trail_lim_.size()];
            const u8 val = lit_value(a);
            if (val == 1) {
                // Already implied; open an empty decision level so the
                // prefix bookkeeping stays aligned.
                trail_lim_.push_back(static_cast<u32>(trail_.size()));
                continue;
            }
            if (val == 0)
                return SatResult::Unsat;
            trail_lim_.push_back(static_cast<u32>(trail_.size()));
            enqueue(a, -1);
            continue;
        }

        const Lit next = pick_branch();
        if (next == ~Lit{0})
            return SatResult::Sat;
        ++decisions_;
        trail_lim_.push_back(static_cast<u32>(trail_.size()));
        enqueue(next, -1);
    }
}

bool
SatSolver::model_value(SatVar v) const
{
    // Unconstrained variables default to their saved phase.
    if (assign_[v] == kUndef)
        return phase_[v] != 0;
    return assign_[v] == 1;
}

} // namespace pokeemu::solver
