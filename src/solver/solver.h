/**
 * @file
 * The decision-procedure facade used by the symbolic explorer.
 *
 * Mirrors how FuzzBALL drives STP/Z3 (paper §3.1.2): feasibility
 * queries over path conditions, satisfying-assignment (model)
 * extraction, and incremental solving — a query that shares a prefix
 * with the previous one reuses all the lowered structure and learned
 * clauses.
 */
#ifndef POKEEMU_SOLVER_SOLVER_H
#define POKEEMU_SOLVER_SOLVER_H

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "solver/bitblast.h"
#include "solver/memo.h"
#include "support/fault.h"

namespace pokeemu::solver {

enum class CheckResult : u8 { Sat, Unsat };

/** Cumulative statistics, reported by bench_solver (experiment E9). */
struct SolverStats
{
    u64 queries = 0;
    u64 sat = 0;
    u64 unsat = 0;
    u64 timed_out = 0; ///< Queries aborted by the per-query deadline.
    /** Queries answered from / actually solved past the QueryMemo
     *  (hits + misses ≤ queries: trivially-constant queries and
     *  memo-less solvers touch neither counter). */
    u64 cache_hits = 0;
    u64 cache_misses = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
};

/** See file comment. */
class Solver
{
  public:
    Solver();
    ~Solver();

    /**
     * Check satisfiability of the conjunction of @p conditions (each a
     * 1-bit expression). After Sat, the model is available through
     * model_value() until the next check.
     *
     * When a per-query budget is set, a query that exceeds it throws
     * FaultError(SolverTimeout); the solver remains usable.
     */
    CheckResult check(const std::vector<ir::ExprRef> &conditions);

    /**
     * Per-query budget: wall-clock milliseconds and/or SAT search-loop
     * iterations (0 disables the respective limit). Applies to every
     * subsequent check().
     */
    void
    set_query_budget(u64 ms, u64 steps = 0)
    {
        budget_ms_ = ms;
        budget_steps_ = steps;
    }

    /** Chaos hook: checked once per check() call (not owned). */
    void
    set_fault_injector(support::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /**
     * Attach a query memo (not owned; null disables memoization).
     * Verdicts — and, for Sat, witnessing models — of non-trivial
     * queries are cached under their canonical conjunction key; a hit
     * skips bit-blasting and the SAT search entirely.
     */
    void
    set_memo(QueryMemo *memo)
    {
        memo_ = memo;
    }

    /**
     * Model value for @p expr (typically a Var) after Sat. After a
     * memoized Sat, variables of the cached query read from its stored
     * model; other variables fall back to the last solved SAT model
     * (never-constrained variables read 0, as always).
     */
    u64 model_value(const ir::ExprRef &expr) const;

    const SolverStats &stats() const { return stats_; }

    /** Underlying SAT statistics (decisions/conflicts/propagations). */
    const SatSolver &sat() const { return *sat_; }

  private:
    std::unique_ptr<SatSolver> sat_;
    std::unique_ptr<BitBlaster> blaster_;
    SolverStats stats_;
    u64 budget_ms_ = 0;    ///< 0 = unlimited.
    u64 budget_steps_ = 0; ///< 0 = unlimited.
    support::FaultInjector *injector_ = nullptr;
    QueryMemo *memo_ = nullptr;
    /** Model of the last check when it was a memoized Sat; reset by
     *  every non-hit check. */
    std::optional<std::unordered_map<u32, u64>> hit_model_;
};

/**
 * A concrete assignment of values to symbolic variables, keyed by
 * variable identity. This is what the decision procedure returns for a
 * path condition, what state-difference minimization edits (paper
 * §3.4), and what the test generator consumes (paper §4.2).
 */
class Assignment
{
  public:
    void set(u32 var_id, u64 value) { values_[var_id] = value; }

    bool has(u32 var_id) const { return values_.count(var_id) != 0; }

    u64 get(u32 var_id) const
    {
        auto it = values_.find(var_id);
        return it == values_.end() ? 0 : it->second;
    }

    const std::unordered_map<u32, u64> &values() const { return values_; }

    /**
     * Evaluate @p expr under this assignment; unassigned variables
     * evaluate to 0.
     */
    u64 eval(const ir::ExprRef &expr) const;

    /** True when every condition evaluates to 1 under the assignment. */
    bool satisfies(const std::vector<ir::ExprRef> &conditions) const;

  private:
    std::unordered_map<u32, u64> values_;
};

} // namespace pokeemu::solver

#endif // POKEEMU_SOLVER_SOLVER_H
