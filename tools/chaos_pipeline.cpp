/**
 * @file
 * Chaos harness for the fault-isolation layer (registered as a ctest).
 *
 * Proves the containment properties the pipeline claims:
 *
 *  1. With faults injected at every site, the sweep runs to
 *     completion — nothing escapes a stage boundary.
 *  2. Exactly the faulted units are quarantined (the ledger matches
 *     the injector's accounting, record by record).
 *  3. Surviving units are byte-identical to a fault-free reference
 *     run (compared through the per-unit checkpoint records).
 *  4. A --resume from a mid-sweep checkpoint — whether the sweep was
 *     preempted gracefully or lost units to chaos — reproduces the
 *     fault-free run's stats.
 *
 * All scenarios use fixed seeds; the whole suite is deterministic.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "arch/decoder.h"
#include "pokeemu/pipeline.h"

namespace fs = std::filesystem;
using namespace pokeemu;
using support::FaultClass;
using support::FaultPlan;
using support::FaultSite;
using support::Stage;

namespace {

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        ++g_failures;
        std::printf("FAIL: %s\n", what.c_str());
    }
}

void
check_eq(u64 got, u64 want, const std::string &what)
{
    if (got != want) {
        ++g_failures;
        std::printf("FAIL: %s: got %llu, want %llu\n", what.c_str(),
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want));
    }
}

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    if (arch::decode(buf.data(), buf.size(), insn) !=
        arch::DecodeStatus::Ok) {
        std::printf("FAIL: chaos instruction does not decode\n");
        std::exit(1);
    }
    return insn.table_index;
}

/** Small, fast sweep covering every stage (a rep would be overkill). */
PipelineOptions
base_options()
{
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),             // push eax
        index_of({0xc9}),             // leave
        index_of({0x0f, 0x32}),       // rdmsr
        index_of({0x8e, 0xd8}),       // mov ds, ax
        index_of({0x74, 0x00}),       // jz
        index_of({0xd3, 0xe0}),       // shl eax, cl
    };
    options.max_paths_per_insn = 16;
    return options;
}

/** The counters two equivalent runs must agree on. */
std::vector<std::pair<const char *, u64>>
counters(const PipelineStats &s)
{
    return {
        {"instructions_explored", s.instructions_explored},
        {"instructions_complete", s.instructions_complete},
        {"total_paths", s.total_paths},
        {"solver_queries", s.solver_queries},
        {"minimize_bits_before", s.minimize_bits_before},
        {"minimize_bits_after", s.minimize_bits_after},
        {"test_programs", s.test_programs},
        {"generation_failures", s.generation_failures},
        {"tests_executed", s.tests_executed},
        {"lofi_raw_diffs", s.lofi_raw_diffs},
        {"hifi_raw_diffs", s.hifi_raw_diffs},
        {"lofi_diffs", s.lofi_diffs},
        {"hifi_diffs", s.hifi_diffs},
        {"filtered_undefined", s.filtered_undefined},
        {"timeouts", s.timeouts},
        {"hifi_timeouts", s.hifi_timeouts},
        {"lofi_timeouts", s.lofi_timeouts},
        {"hw_timeouts", s.hw_timeouts},
    };
}

/** Cluster tables as comparable values (example ids are allowed to
 *  differ between runs whose test-id assignment order differs). */
std::map<std::string, std::pair<u64, std::string>>
cluster_map(const harness::RootCauseClusterer &cl)
{
    std::map<std::string, std::pair<u64, std::string>> out;
    for (const harness::Cluster &c : cl.clusters()) {
        std::string mnemonics;
        for (const std::string &m : c.mnemonics)
            mnemonics += m + " ";
        out[c.root_cause] = {c.count, mnemonics};
    }
    return out;
}

void
check_stats_equal(const PipelineStats &got, const PipelineStats &want,
                  const std::string &label)
{
    const auto g = counters(got), w = counters(want);
    for (std::size_t i = 0; i < g.size(); ++i)
        check_eq(g[i].second, w[i].second, label + ": " + g[i].first);
    check(cluster_map(got.lofi_clusters) ==
              cluster_map(want.lofi_clusters),
          label + ": lofi cluster tables differ");
    check(cluster_map(got.hifi_clusters) ==
              cluster_map(want.hifi_clusters),
          label + ": hifi cluster tables differ");
}

/** Every surviving unit in @p got must be byte-identical to the
 *  fault-free reference unit (ids may shift when earlier units were
 *  quarantined, so they are deliberately not compared). */
void
check_surviving_units(const Checkpoint &got, const Checkpoint &ref,
                      bool compare_tests, const std::string &label)
{
    for (const CheckpointUnit &unit : got.explored) {
        const CheckpointUnit *want = ref.find_unit(unit.table_index);
        const std::string where =
            label + ": unit " + std::to_string(unit.table_index);
        check(want != nullptr, where + " missing from reference");
        if (!want)
            continue;
        check_eq(unit.complete, want->complete, where + ": complete");
        check_eq(unit.paths, want->paths, where + ": paths");
        check_eq(unit.solver_queries, want->solver_queries,
                 where + ": solver_queries");
        if (!compare_tests)
            continue;
        check_eq(unit.tests.size(), want->tests.size(),
                 where + ": test count");
        for (std::size_t i = 0;
             i < std::min(unit.tests.size(), want->tests.size()); ++i) {
            check(unit.tests[i].code == want->tests[i].code &&
                      unit.tests[i].halt_code ==
                          want->tests[i].halt_code,
                  where + ": test " + std::to_string(i) + " differs");
        }
    }
}

struct SitePlan
{
    FaultSite site;
    double probability;
    Stage stage; ///< Where its quarantine records must land.
    /** Class its records must carry: Injected for the generic sites;
     *  the backend sites re-class their faults to the misbehaving-
     *  backend classes so they quarantine at Stage::Backend exactly
     *  like a crashing or hung variant backend would. */
    FaultClass cls;
};

} // namespace

int
main(int argc, char **argv)
{
    double rate = 0.05;
    u64 seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--rate") && i + 1 < argc)
            rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else {
            std::printf("usage: chaos_pipeline [--rate P] [--seed N]\n");
            return 2;
        }
    }

    const fs::path dir = fs::current_path() / "chaos_pipeline.work";
    fs::create_directories(dir);
    const auto cp = [&](const char *name) {
        return (dir / name).string();
    };

    // ---- Reference: fault-free run, checkpointed for per-unit
    // comparison. ----
    std::printf("[reference] fault-free run\n");
    PipelineOptions ref_opts = base_options();
    ref_opts.resilience.checkpoint_path = cp("reference.cp");
    Pipeline reference(ref_opts);
    const PipelineStats &ref = reference.run();
    const Checkpoint ref_cp =
        *load_checkpoint_file(cp("reference.cp"));
    check(ref.quarantine.total() == 0, "reference: quarantine not empty");
    check(ref.test_programs > 20, "reference: too few test programs");

    // ---- 1+2+3: per-site containment. ----
    const SitePlan sites[] = {
        {FaultSite::SolverQuery, 0.05, Stage::StateExploration,
         FaultClass::Injected},
        {FaultSite::Exploration, 0.50, Stage::StateExploration,
         FaultClass::Injected},
        {FaultSite::Generation, 0.25, Stage::Generation,
         FaultClass::Injected},
        {FaultSite::BackendHiFi, 0.10, Stage::Execution,
         FaultClass::Injected},
        {FaultSite::BackendLoFi, 0.10, Stage::Execution,
         FaultClass::Injected},
        {FaultSite::BackendHw, 0.10, Stage::Execution,
         FaultClass::Injected},
        {FaultSite::BackendCrash, 0.10, Stage::Backend,
         FaultClass::BackendCrash},
        {FaultSite::BackendHang, 0.10, Stage::Backend,
         FaultClass::BackendHang},
    };
    for (const SitePlan &plan : sites) {
        const std::string label =
            std::string("site ") + support::fault_site_name(plan.site);
        std::printf("[%s] p=%.2f\n", label.c_str(), plan.probability);
        PipelineOptions opts = base_options();
        opts.resilience.checkpoint_path = cp("site.cp");
        opts.resilience.faults =
            FaultPlan::only(plan.site, plan.probability, seed);
        Pipeline chaos(opts);
        const PipelineStats &s = chaos.run(); // Must not throw.
        const support::FaultInjector &inj = chaos.injector();

        check(inj.injected(plan.site) > 0,
              label + ": no faults injected (vacuous; raise p)");
        // Exactly the faulted units are quarantined: one injected
        // fault aborts exactly one unit of work.
        check_eq(s.quarantine.total(), inj.total_injected(),
                 label + ": quarantine total vs injected");
        for (const support::QuarantinedUnit &q :
             s.quarantine.units()) {
            check(q.cls == plan.cls,
                  label + ": quarantine class mismatch");
            check(q.stage == plan.stage,
                  label + ": quarantine stage mismatch");
        }

        const Checkpoint site_cp = *load_checkpoint_file(cp("site.cp"));
        const bool exploration_site =
            plan.site == FaultSite::SolverQuery ||
            plan.site == FaultSite::Exploration;
        // Generation faults thin a unit's test list without touching
        // its exploration results; elsewhere surviving units must be
        // byte-identical, tests included.
        check_surviving_units(site_cp, ref_cp,
                              plan.site != FaultSite::Generation,
                              label);
        if (exploration_site) {
            check_eq(s.instructions_explored +
                         s.quarantine.count(Stage::StateExploration),
                     ref.instructions_explored,
                     label + ": explored + quarantined vs reference");
        } else if (plan.site == FaultSite::Generation) {
            // A quarantined path would otherwise have become either a
            // test program or a generation failure.
            check_eq(s.test_programs + s.generation_failures +
                         inj.total_injected(),
                     ref.test_programs + ref.generation_failures,
                     label + ": tests + quarantined vs reference");
            check_eq(s.total_paths, ref.total_paths,
                     label + ": exploration perturbed");
        } else {
            check_eq(s.tests_executed + inj.total_injected(),
                     ref.tests_executed,
                     label + ": executed + quarantined vs reference");
            check_eq(s.total_paths, ref.total_paths,
                     label + ": exploration perturbed");
        }
    }

    // ---- 4a: graceful preemption mid-explore, then resume. ----
    std::printf("[resume] preempted after 3 explore units\n");
    {
        PipelineOptions opts = base_options();
        opts.resilience.checkpoint_path = cp("preempt_explore.cp");
        opts.resilience.explore_at_most_units = 3;
        opts.resilience.checkpoint_every_units = 2;
        Pipeline first(opts);
        first.run();
        check_eq(first.stats().instructions_explored, 3,
                 "preempt-explore: first session unit count");

        PipelineOptions ropts = base_options();
        ropts.resilience.checkpoint_path = cp("preempt_explore.cp");
        ropts.resilience.resume = true;
        Pipeline second(ropts);
        const PipelineStats &s = second.run();
        check_eq(s.units_resumed, 3, "preempt-explore: units resumed");
        check(s.tests_resumed > 0, "preempt-explore: tests resumed");
        check_stats_equal(s, ref, "preempt-explore resume");
    }

    // ---- 4b: graceful preemption mid-execution, then resume. ----
    std::printf("[resume] preempted after 5 executed tests\n");
    {
        PipelineOptions opts = base_options();
        opts.resilience.checkpoint_path = cp("preempt_exec.cp");
        opts.resilience.execute_at_most_tests = 5;
        opts.resilience.checkpoint_every_tests = 2;
        Pipeline first(opts);
        first.run();
        check_eq(first.stats().tests_executed, 5,
                 "preempt-exec: first session executed count");

        PipelineOptions ropts = base_options();
        ropts.resilience.checkpoint_path = cp("preempt_exec.cp");
        ropts.resilience.resume = true;
        Pipeline second(ropts);
        const PipelineStats &s = second.run();
        check_eq(s.tests_resumed, 5, "preempt-exec: tests resumed");
        check_eq(s.units_resumed, ref.instructions_explored,
                 "preempt-exec: units resumed");
        check_stats_equal(s, ref, "preempt-exec resume");
    }

    // ---- 4c: chaos run loses units, resume recovers them. ----
    std::printf("[resume] chaos run, then fault-free resume\n");
    {
        PipelineOptions opts = base_options();
        opts.resilience.checkpoint_path = cp("chaos_resume.cp");
        // Whole-unit exploration faults only: quarantined units are
        // absent from the checkpoint, so a fault-free resume recovers
        // the complete fault-free result. (Generation/backend faults
        // are terminal for their unit by design — not re-run here,
        // and the per-query solver site fires so often that a
        // unit-level probability would leave no survivors.)
        opts.resilience.faults =
            FaultPlan::only(FaultSite::Exploration, 0.5, seed);
        Pipeline chaos(opts);
        const PipelineStats &cs = chaos.run();
        check(cs.quarantine.total() > 0,
              "chaos-resume: no units quarantined (vacuous; raise p)");
        check(cs.quarantine.total() < ref.instructions_explored,
              "chaos-resume: no survivors (vacuous; lower p)");

        PipelineOptions ropts = base_options();
        ropts.resilience.checkpoint_path = cp("chaos_resume.cp");
        ropts.resilience.resume = true;
        Pipeline recovered(ropts);
        const PipelineStats &s = recovered.run();
        check(s.quarantine.total() == 0,
              "chaos-resume: resume quarantined units");
        check_eq(s.units_resumed,
                 ref.instructions_explored - cs.quarantine.total(),
                 "chaos-resume: survivors resumed");
        check_stats_equal(s, ref, "chaos-resume");
    }

    // ---- 5: resume refuses a checkpoint from different options. ----
    std::printf("[fingerprint] resume under different options\n");
    {
        PipelineOptions opts = base_options();
        opts.max_paths_per_insn = 8; // Different fingerprint.
        opts.resilience.checkpoint_path = cp("reference.cp");
        opts.resilience.resume = true;
        bool threw = false;
        try {
            Pipeline p(opts);
        } catch (const std::logic_error &) {
            threw = true;
        }
        check(threw, "fingerprint: incompatible resume not refused");
    }

    // ---- 6: the headline run — ~5% faults at every site. ----
    std::printf("[chaos] all sites, p=%.2f, seed=%llu\n", rate,
                static_cast<unsigned long long>(seed));
    {
        PipelineOptions opts = base_options();
        opts.resilience.faults.probability = rate;
        opts.resilience.faults.seed = seed;
        Pipeline chaos(opts);
        const PipelineStats &s = chaos.run(); // Must not throw.
        const support::FaultInjector &inj = chaos.injector();
        check(inj.total_injected() > 0,
              "chaos: no faults injected (vacuous; raise rate)");
        check_eq(s.quarantine.total(), inj.total_injected(),
                 "chaos: quarantine total vs injected");
        // The backend sites re-class their injected faults to the
        // misbehaving-backend classes (see SitePlan::cls).
        for (const support::QuarantinedUnit &q : s.quarantine.units())
            check(q.cls == FaultClass::Injected ||
                      q.cls == FaultClass::BackendCrash ||
                      q.cls == FaultClass::BackendHang,
                  "chaos: unexpected quarantine class");
        std::printf("%s", s.to_string().c_str());
    }

    fs::remove_all(dir);
    if (g_failures != 0) {
        std::printf("chaos_pipeline: %d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("chaos_pipeline: all checks passed\n");
    return 0;
}
