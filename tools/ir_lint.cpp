/**
 * @file
 * ir_lint: run the IR verifier and lint passes over every instruction
 * semantics program in the insn_table, plus the symbolically explored
 * decoder and the descriptor-load helper.
 *
 * For each instruction the driver lifts the semantics exactly the way
 * the pipeline does — canonical encoding, concrete decode, IR
 * generation — and runs analysis::run_pipeline over the result. The
 * exit status is nonzero when any error-severity finding exists, so
 * the ctest registration (tools/CMakeLists.txt) makes semantics
 * regressions fail the suite.
 *
 * Usage:
 *   ir_lint --all            lint every program (default)
 *   ir_lint --insn N         lint one table entry
 *   ir_lint --verbose        print notes too, with statement text
 *   ir_lint --quiet          print errors only
 *   ir_lint --panic-scan D.. flag bare panic() calls in stage-interior
 *                            sources under the given directories
 */
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "arch/decoder.h"
#include "arch/insn_table.h"
#include "hifi/decoder_ir.h"
#include "hifi/semantics.h"
#include "ir/printer.h"

namespace {

using namespace pokeemu;

struct Options
{
    bool verbose = false;
    bool quiet = false;
    int only_insn = -1; ///< -1: every program.
};

struct Totals
{
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
};

void
print_findings(const ir::Program &program,
               const analysis::Report &report, const Options &opt)
{
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        if (d.severity == analysis::Severity::Note && !opt.verbose)
            continue;
        if (d.severity != analysis::Severity::Error && opt.quiet)
            continue;
        std::printf("  %s\n", d.to_string().c_str());
        if (opt.verbose && d.stmt_index != analysis::kNoStmt &&
            d.stmt_index < program.stmts.size()) {
            std::printf(
                "      > %s\n",
                ir::to_string(program.stmts[d.stmt_index]).c_str());
        }
    }
}

void
lint_program(const std::string &title, const ir::Program &program,
             const Options &opt, Totals &totals)
{
    const analysis::Report report = analysis::run_pipeline(program);
    const std::size_t errors =
        report.count(analysis::Severity::Error);
    const std::size_t warnings =
        report.count(analysis::Severity::Warning);
    const std::size_t notes = report.count(analysis::Severity::Note);
    ++totals.programs;
    totals.errors += errors;
    totals.warnings += warnings;
    totals.notes += notes;

    const bool print_header =
        errors != 0 || (!opt.quiet && warnings != 0) ||
        (opt.verbose && !report.empty());
    if (print_header) {
        std::printf("%s: %zu error%s, %zu warning%s, %zu note%s\n",
                    title.c_str(), errors, errors == 1 ? "" : "s",
                    warnings, warnings == 1 ? "" : "s", notes,
                    notes == 1 ? "" : "s");
        print_findings(program, report, opt);
    }
}

int
lint_insn(int index, const Options &opt, Totals &totals)
{
    const arch::InsnDesc &desc = arch::insn_table()[index];
    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    if (arch::decode(bytes.data(), bytes.size(), insn) !=
        arch::DecodeStatus::Ok) {
        std::printf("[%3d] %s: canonical encoding does not decode\n",
                    index, desc.mnemonic);
        ++totals.errors;
        return 1;
    }
    char title[128];
    std::snprintf(title, sizeof title, "[%3d] %s", index,
                  desc.mnemonic);
    lint_program(title, hifi::build_semantics(insn), opt, totals);
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--all] [--insn N] [--verbose] [--quiet] "
                 "[--panic-scan DIR...]\n",
                 argv0);
    return 2;
}

/**
 * Does @p line contain a bare panic() call? Stage-interior code must
 * throw support::FaultError (quarantinable, unit-attributable)
 * instead; panic() is reserved for global invariants and needs an
 * explicit `lint: allow-panic` marker on the call or the line above.
 */
bool
line_calls_panic(const std::string &line)
{
    const std::size_t comment = line.find("//");
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '*')
        return false; // Block-comment body.
    for (std::size_t pos = line.find("panic(");
         pos != std::string::npos; pos = line.find("panic(", pos + 1)) {
        if (comment != std::string::npos && pos > comment)
            break; // Only mentioned in a trailing comment.
        if (pos > 0 &&
            (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
             line[pos - 1] == '_')) {
            continue; // Part of a longer identifier.
        }
        return true;
    }
    return false;
}

/** Scan stage-interior sources for unmarked panic() calls. */
int
panic_scan(const std::vector<std::string> &dirs)
{
    namespace fs = std::filesystem;
    static const char *kAllowMarker = "lint: allow-panic";
    std::size_t files = 0, findings = 0;
    for (const std::string &dir : dirs) {
        if (!fs::is_directory(dir)) {
            std::fprintf(stderr,
                         "ir_lint: --panic-scan: '%s' is not a "
                         "directory\n",
                         dir.c_str());
            return 2;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            const fs::path &path = entry.path();
            if (path.extension() != ".cpp" && path.extension() != ".h")
                continue;
            ++files;
            std::ifstream in(path);
            std::string line, previous;
            for (std::size_t lineno = 1; std::getline(in, line);
                 ++lineno, previous = line) {
                if (!line_calls_panic(line))
                    continue;
                if (line.find(kAllowMarker) != std::string::npos ||
                    previous.find(kAllowMarker) != std::string::npos)
                    continue;
                ++findings;
                std::printf("%s:%zu: bare panic() in stage-interior "
                            "code; throw support::FaultError (or mark "
                            "'%s')\n",
                            path.string().c_str(), lineno,
                            kAllowMarker);
            }
        }
    }
    std::printf("ir_lint: panic-scan: %zu file%s scanned, %zu "
                "finding%s\n",
                files, files == 1 ? "" : "s", findings,
                findings == 1 ? "" : "s");
    return findings == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--panic-scan")) {
            std::vector<std::string> dirs(argv + i + 1, argv + argc);
            if (dirs.empty())
                return usage(argv[0]);
            return panic_scan(dirs);
        }
        if (!std::strcmp(argv[i], "--all")) {
            opt.only_insn = -1;
        } else if (!std::strcmp(argv[i], "--insn") && i + 1 < argc) {
            char *end = nullptr;
            const long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 0)
                return usage(argv[0]);
            opt.only_insn = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--verbose") ||
                   !std::strcmp(argv[i], "-v")) {
            opt.verbose = true;
        } else if (!std::strcmp(argv[i], "--quiet") ||
                   !std::strcmp(argv[i], "-q")) {
            opt.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    Totals totals;
    const int table_size =
        static_cast<int>(arch::insn_table().size());
    if (opt.only_insn >= 0) {
        if (opt.only_insn >= table_size) {
            std::fprintf(stderr, "ir_lint: --insn %d out of range\n",
                         opt.only_insn);
            return 2;
        }
        lint_insn(opt.only_insn, opt, totals);
    } else {
        for (int i = 0; i < table_size; ++i)
            lint_insn(i, opt, totals);
        lint_program("[decoder]", hifi::build_decoder_program(), opt,
                     totals);
        lint_program("[descriptor-load helper]",
                     hifi::build_descriptor_load_helper(), opt,
                     totals);
    }

    std::printf("ir_lint: %zu program%s checked: %zu error%s, "
                "%zu warning%s, %zu note%s\n",
                totals.programs, totals.programs == 1 ? "" : "s",
                totals.errors, totals.errors == 1 ? "" : "s",
                totals.warnings, totals.warnings == 1 ? "" : "s",
                totals.notes, totals.notes == 1 ? "" : "s");
    return totals.errors == 0 ? 0 : 1;
}
