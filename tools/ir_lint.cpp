/**
 * @file
 * ir_lint: run the IR verifier and lint passes over every instruction
 * semantics program in the insn_table, plus the symbolically explored
 * decoder and the descriptor-load helper.
 *
 * For each instruction the driver lifts the semantics exactly the way
 * the pipeline does — canonical encoding, concrete decode, IR
 * generation — and runs analysis::run_pipeline over the result. The
 * exit status is nonzero when any error-severity finding exists, so
 * the ctest registration (tools/CMakeLists.txt) makes semantics
 * regressions fail the suite.
 *
 * Usage:
 *   ir_lint --all            lint every program (default)
 *   ir_lint --insn N         lint one table entry
 *   ir_lint --verbose        print notes too, with statement text
 *   ir_lint --quiet          print errors only
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/passes.h"
#include "arch/decoder.h"
#include "arch/insn_table.h"
#include "hifi/decoder_ir.h"
#include "hifi/semantics.h"
#include "ir/printer.h"

namespace {

using namespace pokeemu;

struct Options
{
    bool verbose = false;
    bool quiet = false;
    int only_insn = -1; ///< -1: every program.
};

struct Totals
{
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
};

void
print_findings(const ir::Program &program,
               const analysis::Report &report, const Options &opt)
{
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        if (d.severity == analysis::Severity::Note && !opt.verbose)
            continue;
        if (d.severity != analysis::Severity::Error && opt.quiet)
            continue;
        std::printf("  %s\n", d.to_string().c_str());
        if (opt.verbose && d.stmt_index != analysis::kNoStmt &&
            d.stmt_index < program.stmts.size()) {
            std::printf(
                "      > %s\n",
                ir::to_string(program.stmts[d.stmt_index]).c_str());
        }
    }
}

void
lint_program(const std::string &title, const ir::Program &program,
             const Options &opt, Totals &totals)
{
    const analysis::Report report = analysis::run_pipeline(program);
    const std::size_t errors =
        report.count(analysis::Severity::Error);
    const std::size_t warnings =
        report.count(analysis::Severity::Warning);
    const std::size_t notes = report.count(analysis::Severity::Note);
    ++totals.programs;
    totals.errors += errors;
    totals.warnings += warnings;
    totals.notes += notes;

    const bool print_header =
        errors != 0 || (!opt.quiet && warnings != 0) ||
        (opt.verbose && !report.empty());
    if (print_header) {
        std::printf("%s: %zu error%s, %zu warning%s, %zu note%s\n",
                    title.c_str(), errors, errors == 1 ? "" : "s",
                    warnings, warnings == 1 ? "" : "s", notes,
                    notes == 1 ? "" : "s");
        print_findings(program, report, opt);
    }
}

int
lint_insn(int index, const Options &opt, Totals &totals)
{
    const arch::InsnDesc &desc = arch::insn_table()[index];
    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    if (arch::decode(bytes.data(), bytes.size(), insn) !=
        arch::DecodeStatus::Ok) {
        std::printf("[%3d] %s: canonical encoding does not decode\n",
                    index, desc.mnemonic);
        ++totals.errors;
        return 1;
    }
    char title[128];
    std::snprintf(title, sizeof title, "[%3d] %s", index,
                  desc.mnemonic);
    lint_program(title, hifi::build_semantics(insn), opt, totals);
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--all] [--insn N] [--verbose] [--quiet]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--all")) {
            opt.only_insn = -1;
        } else if (!std::strcmp(argv[i], "--insn") && i + 1 < argc) {
            char *end = nullptr;
            const long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 0)
                return usage(argv[0]);
            opt.only_insn = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--verbose") ||
                   !std::strcmp(argv[i], "-v")) {
            opt.verbose = true;
        } else if (!std::strcmp(argv[i], "--quiet") ||
                   !std::strcmp(argv[i], "-q")) {
            opt.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    Totals totals;
    const int table_size =
        static_cast<int>(arch::insn_table().size());
    if (opt.only_insn >= 0) {
        if (opt.only_insn >= table_size) {
            std::fprintf(stderr, "ir_lint: --insn %d out of range\n",
                         opt.only_insn);
            return 2;
        }
        lint_insn(opt.only_insn, opt, totals);
    } else {
        for (int i = 0; i < table_size; ++i)
            lint_insn(i, opt, totals);
        lint_program("[decoder]", hifi::build_decoder_program(), opt,
                     totals);
        lint_program("[descriptor-load helper]",
                     hifi::build_descriptor_load_helper(), opt,
                     totals);
    }

    std::printf("ir_lint: %zu program%s checked: %zu error%s, "
                "%zu warning%s, %zu note%s\n",
                totals.programs, totals.programs == 1 ? "" : "s",
                totals.errors, totals.errors == 1 ? "" : "s",
                totals.warnings, totals.warnings == 1 ? "" : "s",
                totals.notes, totals.notes == 1 ? "" : "s");
    return totals.errors == 0 ? 0 : 1;
}
