/**
 * @file
 * ir_lint: run the IR verifier and lint passes over every instruction
 * semantics program in the insn_table, plus the symbolically explored
 * decoder and the descriptor-load helper.
 *
 * For each instruction the driver lifts the semantics exactly the way
 * the pipeline does — canonical encoding, concrete decode, IR
 * generation — and runs analysis::run_pipeline over the result. The
 * exit status is nonzero when any error-severity finding exists, so
 * the ctest registration (tools/CMakeLists.txt) makes semantics
 * regressions fail the suite.
 *
 * Usage:
 *   ir_lint --all            lint every program (default)
 *   ir_lint --insn N         lint one table entry
 *   ir_lint --verbose        print notes too, with statement text
 *   ir_lint --quiet          print errors only
 *   ir_lint --json           machine-readable report: per-program
 *                            diagnostics plus per-pass finding counts
 *   ir_lint --flags-oracle   cross-check the dataflow-derived EFLAGS
 *                            may/must-write summary of every insn_table
 *                            entry against harness::undefined_flags_mask
 *   ir_lint --panic-scan D.. flag bare panic() calls in stage-interior
 *                            sources under the given directories
 */
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "arch/decoder.h"
#include "arch/insn_table.h"
#include "harness/filter.h"
#include "hifi/decoder_ir.h"
#include "hifi/semantics.h"
#include "ir/printer.h"

namespace {

using namespace pokeemu;

struct Options
{
    bool verbose = false;
    bool quiet = false;
    bool json = false;
    int only_insn = -1; ///< -1: every program.
};

/**
 * Accumulates the --json report: one object per program (with every
 * diagnostic, regardless of severity) and finding counts per pass.
 */
struct JsonSink
{
    std::vector<std::string> programs;
    std::map<std::string, std::size_t> pass_counts;
};

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct Totals
{
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
};

void
print_findings(const ir::Program &program,
               const analysis::Report &report, const Options &opt)
{
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        if (d.severity == analysis::Severity::Note && !opt.verbose)
            continue;
        if (d.severity != analysis::Severity::Error && opt.quiet)
            continue;
        std::printf("  %s\n", d.to_string().c_str());
        if (opt.verbose && d.stmt_index != analysis::kNoStmt &&
            d.stmt_index < program.stmts.size()) {
            std::printf(
                "      > %s\n",
                ir::to_string(program.stmts[d.stmt_index]).c_str());
        }
    }
}

/** Append @p report as one JSON program object to @p sink. */
void
json_program(const std::string &title,
             const analysis::Report &report, JsonSink &sink)
{
    std::map<std::string, std::size_t> passes;
    std::string diags;
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        ++passes[d.pass];
        ++sink.pass_counts[d.pass];
        if (!diags.empty())
            diags += ", ";
        diags += "{\"severity\": \"";
        diags += analysis::severity_name(d.severity);
        diags += "\", \"pass\": \"" + json_escape(d.pass) + "\"";
        if (d.stmt_index != analysis::kNoStmt)
            diags += ", \"stmt\": " + std::to_string(d.stmt_index);
        diags += ", \"message\": \"" + json_escape(d.message) + "\"}";
    }
    std::string counts;
    for (const auto &[pass, n] : passes) {
        if (!counts.empty())
            counts += ", ";
        counts +=
            "\"" + json_escape(pass) + "\": " + std::to_string(n);
    }
    sink.programs.push_back(
        "{\"program\": \"" + json_escape(title) + "\", \"passes\": {" +
        counts + "}, \"diagnostics\": [" + diags + "]}");
}

void
lint_program(const std::string &title, const ir::Program &program,
             const Options &opt, Totals &totals,
             JsonSink *sink = nullptr)
{
    const analysis::Report report = analysis::run_pipeline(program);
    const std::size_t errors =
        report.count(analysis::Severity::Error);
    const std::size_t warnings =
        report.count(analysis::Severity::Warning);
    const std::size_t notes = report.count(analysis::Severity::Note);
    ++totals.programs;
    totals.errors += errors;
    totals.warnings += warnings;
    totals.notes += notes;
    if (sink != nullptr) {
        json_program(title, report, *sink);
        return;
    }

    const bool print_header =
        errors != 0 || (!opt.quiet && warnings != 0) ||
        (opt.verbose && !report.empty());
    if (print_header) {
        std::printf("%s: %zu error%s, %zu warning%s, %zu note%s\n",
                    title.c_str(), errors, errors == 1 ? "" : "s",
                    warnings, warnings == 1 ? "" : "s", notes,
                    notes == 1 ? "" : "s");
        print_findings(program, report, opt);
    }
}

int
lint_insn(int index, const Options &opt, Totals &totals,
          JsonSink *sink = nullptr)
{
    const arch::InsnDesc &desc = arch::insn_table()[index];
    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    if (arch::decode(bytes.data(), bytes.size(), insn) !=
        arch::DecodeStatus::Ok) {
        std::printf("[%3d] %s: canonical encoding does not decode\n",
                    index, desc.mnemonic);
        ++totals.errors;
        return 1;
    }
    char title[128];
    std::snprintf(title, sizeof title, "[%3d] %s", index,
                  desc.mnemonic);
    lint_program(title, hifi::build_semantics(insn), opt, totals,
                 sink);
    return 0;
}

/** Render a status-flag mask as "CF|PF|..." (or "-" when empty). */
std::string
flags_str(u32 mask)
{
    static const struct { u32 bit; const char *name; } kFlags[] = {
        {arch::kFlagCf, "CF"}, {arch::kFlagPf, "PF"},
        {arch::kFlagAf, "AF"}, {arch::kFlagZf, "ZF"},
        {arch::kFlagSf, "SF"}, {arch::kFlagOf, "OF"},
    };
    std::string out;
    for (const auto &f : kFlags) {
        if ((mask & f.bit) == 0)
            continue;
        if (!out.empty())
            out += "|";
        out += f.name;
    }
    return out.empty() ? "-" : out;
}

/**
 * Cross-check the dataflow-derived EFLAGS write summary of every
 * insn_table entry against the hand-written undefined-flags oracle
 * (paper §6.2). Two directions, over the six status flags:
 *
 *  - soundness of the table: every bit the semantics only
 *    conditionally define (may-write minus must-write) must be either
 *    documented-undefined or explained by flags_oracle_allowlist;
 *  - completeness of the semantics: every documented-undefined bit
 *    must at least be may-written, unless the allowlist records that
 *    the semantics deliberately leave it unchanged (a valid instance
 *    of undefined behaviour).
 *
 * Programs with no completing exit (hlt, far control transfers, int)
 * have no flag contract to check; they only count as disagreements
 * when the oracle documents undefined flags for them.
 */
int
flags_oracle(const Options &opt)
{
    const int table_size =
        static_cast<int>(arch::insn_table().size());
    std::size_t checked = 0, disagreements = 0;
    for (int i = 0; i < table_size; ++i) {
        const arch::InsnDesc &desc = arch::insn_table()[i];
        const std::vector<u8> bytes = arch::canonical_encoding(i);
        arch::DecodedInsn insn;
        if (arch::decode(bytes.data(), bytes.size(), insn) !=
            arch::DecodeStatus::Ok) {
            std::printf("[%3d] %s: canonical encoding does not "
                        "decode\n",
                        i, desc.mnemonic);
            ++disagreements;
            continue;
        }
        const ir::Program program = hifi::build_semantics(insn);
        const analysis::FlagSummary s = analysis::flag_write_summary(
            program, arch::layout::kEflagsAddr);
        ++checked;
        const u32 undef =
            harness::undefined_flags_mask(desc.op) &
            analysis::kStatusFlagsMask;
        const u32 allow =
            harness::flags_oracle_allowlist(desc.op) &
            analysis::kStatusFlagsMask;
        if (!s.analyzed) {
            std::printf("[%3d] %s: dataflow analysis bailed; no flag "
                        "summary\n",
                        i, desc.mnemonic);
            ++disagreements;
            continue;
        }
        if (s.ok_exits == 0) {
            if (undef != 0) {
                std::printf("[%3d] %s: no completing exit, but the "
                            "oracle documents undefined flags %s\n",
                            i, desc.mnemonic, flags_str(undef).c_str());
                ++disagreements;
            } else if (opt.verbose) {
                std::printf("[%3d] %s: no completing exit; nothing to "
                            "cross-check\n",
                            i, desc.mnemonic);
            }
            continue;
        }
        const u32 conditional = (s.may & ~s.must) &
                                analysis::kStatusFlagsMask;
        const u32 unexplained = conditional & ~(undef | allow);
        const u32 untouched = undef & ~s.may & ~allow;
        if (unexplained != 0) {
            std::printf("[%3d] %s: conditionally-written flags %s not "
                        "explained by the oracle (undefined %s, "
                        "allowlist %s)\n",
                        i, desc.mnemonic,
                        flags_str(unexplained).c_str(),
                        flags_str(undef).c_str(),
                        flags_str(allow).c_str());
            ++disagreements;
        }
        if (untouched != 0) {
            std::printf("[%3d] %s: documented-undefined flags %s are "
                        "never written by the semantics\n",
                        i, desc.mnemonic,
                        flags_str(untouched).c_str());
            ++disagreements;
        }
        if (opt.verbose) {
            std::printf("[%3d] %s: may %s, must %s, undefined %s "
                        "(%llu ok exits)\n",
                        i, desc.mnemonic, flags_str(s.may).c_str(),
                        flags_str(s.must).c_str(),
                        flags_str(undef).c_str(),
                        static_cast<unsigned long long>(s.ok_exits));
        }
    }
    std::printf("ir_lint: flags-oracle: %zu program%s cross-checked, "
                "%zu disagreement%s\n",
                checked, checked == 1 ? "" : "s", disagreements,
                disagreements == 1 ? "" : "s");
    return disagreements == 0 ? 0 : 1;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--all] [--insn N] [--verbose] [--quiet] "
                 "[--json] [--flags-oracle] [--panic-scan DIR...]\n",
                 argv0);
    return 2;
}

/**
 * Does @p line contain a bare panic() call? Stage-interior code must
 * throw support::FaultError (quarantinable, unit-attributable)
 * instead; panic() is reserved for global invariants and needs an
 * explicit `lint: allow-panic` marker on the call or the line above.
 */
bool
line_calls_panic(const std::string &line)
{
    const std::size_t comment = line.find("//");
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '*')
        return false; // Block-comment body.
    for (std::size_t pos = line.find("panic(");
         pos != std::string::npos; pos = line.find("panic(", pos + 1)) {
        if (comment != std::string::npos && pos > comment)
            break; // Only mentioned in a trailing comment.
        if (pos > 0 &&
            (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
             line[pos - 1] == '_')) {
            continue; // Part of a longer identifier.
        }
        return true;
    }
    return false;
}

/** Scan stage-interior sources for unmarked panic() calls. */
int
panic_scan(const std::vector<std::string> &dirs)
{
    namespace fs = std::filesystem;
    static const char *kAllowMarker = "lint: allow-panic";
    std::size_t files = 0, findings = 0;
    for (const std::string &dir : dirs) {
        if (!fs::is_directory(dir)) {
            std::fprintf(stderr,
                         "ir_lint: --panic-scan: '%s' is not a "
                         "directory\n",
                         dir.c_str());
            return 2;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            const fs::path &path = entry.path();
            if (path.extension() != ".cpp" && path.extension() != ".h")
                continue;
            ++files;
            std::ifstream in(path);
            std::string line, previous;
            for (std::size_t lineno = 1; std::getline(in, line);
                 ++lineno, previous = line) {
                if (!line_calls_panic(line))
                    continue;
                if (line.find(kAllowMarker) != std::string::npos ||
                    previous.find(kAllowMarker) != std::string::npos)
                    continue;
                ++findings;
                std::printf("%s:%zu: bare panic() in stage-interior "
                            "code; throw support::FaultError (or mark "
                            "'%s')\n",
                            path.string().c_str(), lineno,
                            kAllowMarker);
            }
        }
    }
    std::printf("ir_lint: panic-scan: %zu file%s scanned, %zu "
                "finding%s\n",
                files, files == 1 ? "" : "s", findings,
                findings == 1 ? "" : "s");
    return findings == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--panic-scan")) {
            std::vector<std::string> dirs(argv + i + 1, argv + argc);
            if (dirs.empty())
                return usage(argv[0]);
            return panic_scan(dirs);
        }
        if (!std::strcmp(argv[i], "--all")) {
            opt.only_insn = -1;
        } else if (!std::strcmp(argv[i], "--json")) {
            opt.json = true;
        } else if (!std::strcmp(argv[i], "--flags-oracle")) {
            for (++i; i < argc; ++i) {
                if (!std::strcmp(argv[i], "--verbose") ||
                    !std::strcmp(argv[i], "-v"))
                    opt.verbose = true;
                else
                    return usage(argv[0]);
            }
            return flags_oracle(opt);
        } else if (!std::strcmp(argv[i], "--insn") && i + 1 < argc) {
            char *end = nullptr;
            const long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 0)
                return usage(argv[0]);
            opt.only_insn = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--verbose") ||
                   !std::strcmp(argv[i], "-v")) {
            opt.verbose = true;
        } else if (!std::strcmp(argv[i], "--quiet") ||
                   !std::strcmp(argv[i], "-q")) {
            opt.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    Totals totals;
    JsonSink sink;
    JsonSink *sinkp = opt.json ? &sink : nullptr;
    const int table_size =
        static_cast<int>(arch::insn_table().size());
    if (opt.only_insn >= 0) {
        if (opt.only_insn >= table_size) {
            std::fprintf(stderr, "ir_lint: --insn %d out of range\n",
                         opt.only_insn);
            return 2;
        }
        lint_insn(opt.only_insn, opt, totals, sinkp);
    } else {
        for (int i = 0; i < table_size; ++i)
            lint_insn(i, opt, totals, sinkp);
        lint_program("[decoder]", hifi::build_decoder_program(), opt,
                     totals, sinkp);
        lint_program("[descriptor-load helper]",
                     hifi::build_descriptor_load_helper(), opt,
                     totals, sinkp);
    }

    if (opt.json) {
        std::printf("{\n  \"programs\": [\n");
        for (std::size_t i = 0; i < sink.programs.size(); ++i)
            std::printf("    %s%s\n", sink.programs[i].c_str(),
                        i + 1 < sink.programs.size() ? "," : "");
        std::printf("  ],\n  \"pass_counts\": {");
        bool first = true;
        for (const auto &[pass, n] : sink.pass_counts) {
            std::printf("%s\"%s\": %zu", first ? "" : ", ",
                        json_escape(pass).c_str(), n);
            first = false;
        }
        std::printf("},\n  \"totals\": {\"programs\": %zu, "
                    "\"errors\": %zu, \"warnings\": %zu, "
                    "\"notes\": %zu}\n}\n",
                    totals.programs, totals.errors, totals.warnings,
                    totals.notes);
        return totals.errors == 0 ? 0 : 1;
    }

    std::printf("ir_lint: %zu program%s checked: %zu error%s, "
                "%zu warning%s, %zu note%s\n",
                totals.programs, totals.programs == 1 ? "" : "s",
                totals.errors, totals.errors == 1 ? "" : "s",
                totals.warnings, totals.warnings == 1 ? "" : "s",
                totals.notes, totals.notes == 1 ? "" : "s");
    return totals.errors == 0 ? 0 : 1;
}
