/**
 * @file
 * ir_equiv: optimize every instruction semantics program in the
 * insn_table and prove each (original, optimized) pair equivalent
 * with the solver-backed translation validator (analysis/equiv.h).
 *
 * For each instruction the driver lifts the semantics exactly the way
 * the pipeline does — canonical encoding, concrete decode, IR
 * generation over the Figure-3 state spec — runs the optimizer, and
 * validates the translation under the spec's environment (initial
 * bytes, descriptor-loadability preconditions, EFLAGS masked by the
 * undefined-flags oracle). The exit status is nonzero when any
 * counterexample exists, so the ctest registration
 * (tools/CMakeLists.txt, `ir_equiv_all`) makes a miscompiling
 * optimizer pass fail the suite.
 *
 * rep/repne-prefixed programs iterate on ECX; their validation pins
 * ECX <= 2 through preconditions so the joint exploration is
 * exhaustive and the verdict is a proof over that bounded subspace
 * (reported as "proven (ecx<=2)").
 *
 * Usage:
 *   ir_equiv --all          validate every program (default)
 *   ir_equiv --insn N       validate one table entry
 *   ir_equiv --json         machine-readable per-program report
 *   ir_equiv --verbose      print a row for every program, not just
 *                           failures and bounded verdicts
 *   ir_equiv --max-paths N  per-exploration path cap (default 4096)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/equiv.h"
#include "analysis/optimize.h"
#include "arch/decoder.h"
#include "arch/insn_table.h"
#include "explore/state_spec.h"
#include "harness/filter.h"
#include "hifi/semantics.h"
#include "testgen/testgen.h"

namespace {

using namespace pokeemu;
namespace E = ir::E;
namespace layout = arch::layout;

struct Options
{
    bool verbose = false;
    bool json = false;
    int only_insn = -1; ///< -1: every program.
    u64 max_paths = 4096;
    u64 max_steps = 1u << 20;
};

struct Row
{
    int index = 0;
    std::string mnemonic;
    u64 stmts_before = 0;
    u64 stmts_after = 0;
    u64 exec_before = 0;
    u64 exec_after = 0;
    u64 paths = 0;
    u64 pairs = 0;
    u64 queries = 0;
    bool ecx_bounded = false;
    std::string verdict; ///< "proven" / "bounded" / "FAIL".
    std::string counterexample;
};

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

double
reduction_pct(u64 before, u64 after)
{
    if (before == 0)
        return 0.0;
    return 100.0 *
        (1.0 - static_cast<double>(after) /
             static_cast<double>(before));
}

/** Validate one table entry; returns the table row. */
Row
check_insn(int index, const explore::StateSpec &spec,
           const symexec::Summary *summary, const Options &opt)
{
    const arch::InsnDesc &desc = arch::insn_table()[index];
    Row row;
    row.index = index;
    row.mnemonic = desc.mnemonic;

    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    if (arch::decode(bytes.data(), bytes.size(), insn) !=
        arch::DecodeStatus::Ok) {
        row.verdict = "FAIL";
        row.counterexample = "canonical encoding does not decode";
        return row;
    }

    hifi::SemanticsOptions sem_options;
    sem_options.descriptor_summary = summary;
    const ir::Program original = hifi::build_semantics(insn,
                                                       sem_options);
    const analysis::OptResult optimized =
        analysis::optimize_program(original);
    row.stmts_before = optimized.stats.stmts_before;
    row.stmts_after = optimized.stats.stmts_after;
    row.exec_before = optimized.stats.exec_before;
    row.exec_after = optimized.stats.exec_after;

    symexec::VarPool pool;
    analysis::EquivOptions eq;
    eq.max_paths = opt.max_paths;
    eq.max_steps = opt.max_steps;
    eq.preconditions = spec.preconditions(pool);
    eq.eflags_addr = layout::kEflagsAddr;
    eq.eflags_ignore_mask = harness::undefined_flags_mask(desc.op);
    const symexec::InitialByteFn initial = spec.initial_fn(pool);
    if (insn.rep || insn.repne) {
        // Bound the iteration count so the joint path space is
        // exhaustively explorable: ECX's high bytes are zero and its
        // low byte is at most 2 in every validated initial state.
        row.ecx_bounded = true;
        const u32 ecx = layout::gpr_addr(1);
        for (u32 k = 1; k < 4; ++k) {
            eq.preconditions.push_back(
                E::eq(initial(ecx + k), E::constant(8, 0)));
        }
        eq.preconditions.push_back(
            E::ule(initial(ecx), E::constant(8, 2)));
    }

    const analysis::EquivResult res = analysis::validate_translation(
        original, optimized.program, pool, initial, eq);
    row.paths = res.original_paths;
    row.pairs = res.pairs_checked;
    row.queries = res.solver_queries;
    if (!res.equivalent) {
        row.verdict = "FAIL";
        if (res.counterexample)
            row.counterexample = res.counterexample->to_string(pool);
    } else if (res.proven) {
        row.verdict =
            row.ecx_bounded ? "proven (ecx<=2)" : "proven";
    } else {
        row.verdict = "bounded";
    }
    return row;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--all] [--insn N] [--json] [--verbose] "
                 "[--max-paths N] [--max-steps N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const auto num = [&](u64 &out) {
            if (i + 1 >= argc)
                std::exit(usage(argv[0]));
            char *end = nullptr;
            out = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0')
                std::exit(usage(argv[0]));
        };
        if (!std::strcmp(argv[i], "--all")) {
            opt.only_insn = -1;
        } else if (!std::strcmp(argv[i], "--json")) {
            opt.json = true;
        } else if (!std::strcmp(argv[i], "--verbose") ||
                   !std::strcmp(argv[i], "-v")) {
            opt.verbose = true;
        } else if (!std::strcmp(argv[i], "--insn") && i + 1 < argc) {
            char *end = nullptr;
            const long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 0)
                return usage(argv[0]);
            opt.only_insn = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--max-paths")) {
            num(opt.max_paths);
        } else if (!std::strcmp(argv[i], "--max-steps")) {
            num(opt.max_steps);
        } else {
            return usage(argv[0]);
        }
    }

    const int table_size =
        static_cast<int>(arch::insn_table().size());
    if (opt.only_insn >= table_size) {
        std::fprintf(stderr, "ir_equiv: --insn %d out of range\n",
                     opt.only_insn);
        return 2;
    }

    // The pipeline's exploration environment: descriptor-load summary
    // plus the Figure-3 baseline spec.
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    std::vector<Row> rows;
    if (opt.only_insn >= 0) {
        rows.push_back(check_insn(opt.only_insn, spec, &summary, opt));
    } else {
        for (int i = 0; i < table_size; ++i)
            rows.push_back(check_insn(i, spec, &summary, opt));
    }

    u64 total_before = 0, total_after = 0;
    std::size_t proven = 0, bounded = 0, failures = 0;
    for (const Row &r : rows) {
        total_before += r.stmts_before;
        total_after += r.stmts_after;
        if (r.verdict == "FAIL")
            ++failures;
        else if (r.verdict == "bounded")
            ++bounded;
        else
            ++proven;
    }

    if (opt.json) {
        std::printf("{\n  \"programs\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::printf(
                "    {\"insn\": %d, \"mnemonic\": \"%s\", "
                "\"stmts_before\": %llu, \"stmts_after\": %llu, "
                "\"exec_before\": %llu, \"exec_after\": %llu, "
                "\"paths\": %llu, \"pairs\": %llu, "
                "\"queries\": %llu, \"verdict\": \"%s\"",
                r.index, json_escape(r.mnemonic).c_str(),
                static_cast<unsigned long long>(r.stmts_before),
                static_cast<unsigned long long>(r.stmts_after),
                static_cast<unsigned long long>(r.exec_before),
                static_cast<unsigned long long>(r.exec_after),
                static_cast<unsigned long long>(r.paths),
                static_cast<unsigned long long>(r.pairs),
                static_cast<unsigned long long>(r.queries),
                json_escape(r.verdict).c_str());
            if (!r.counterexample.empty()) {
                std::printf(", \"counterexample\": \"%s\"",
                            json_escape(r.counterexample).c_str());
            }
            std::printf("}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ],\n  \"totals\": {\"programs\": %zu, "
                    "\"stmts_before\": %llu, \"stmts_after\": %llu, "
                    "\"proven\": %zu, \"bounded\": %zu, "
                    "\"failures\": %zu}\n}\n",
                    rows.size(),
                    static_cast<unsigned long long>(total_before),
                    static_cast<unsigned long long>(total_after),
                    proven, bounded, failures);
        return failures == 0 ? 0 : 1;
    }

    for (const Row &r : rows) {
        const bool interesting = r.verdict == "FAIL" ||
            r.verdict == "bounded" || opt.verbose ||
            opt.only_insn >= 0;
        if (!interesting)
            continue;
        std::printf("[%3d] %-16s %4llu -> %4llu stmts (%5.1f%%)  "
                    "%4llu paths  %s\n",
                    r.index, r.mnemonic.c_str(),
                    static_cast<unsigned long long>(r.stmts_before),
                    static_cast<unsigned long long>(r.stmts_after),
                    reduction_pct(r.stmts_before, r.stmts_after),
                    static_cast<unsigned long long>(r.paths),
                    r.verdict.c_str());
        if (!r.counterexample.empty())
            std::printf("%s\n", r.counterexample.c_str());
    }
    std::printf("ir_equiv: %zu program%s: %llu -> %llu statements "
                "(%.1f%% reduction), %zu proven, %zu bounded, "
                "%zu counterexample%s\n",
                rows.size(), rows.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(total_before),
                static_cast<unsigned long long>(total_after),
                reduction_pct(total_before, total_after), proven,
                bounded, failures, failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}
