/**
 * @file
 * IR coverage report over the full instruction table.
 *
 * For every instruction the decoder table knows, explore its semantics
 * (canonical encoding, the pipeline's baseline state spec) under a
 * path cap and report the block/edge coverage the surviving paths
 * achieved — the measurable analog of the paper's "complete path
 * coverage for ~95% of instructions under the 8192-path cap" (§6).
 *
 *   coverage_report                      # sweep, print per-insn rows
 *   coverage_report --max-paths 16
 *   coverage_report --fail-under-blocks 90 --fail-under-edges 80
 *   coverage_report --require-single-path-full
 *
 * Exit status: 0 on success, 1 when a --fail-under threshold or the
 * single-path-full check fails, 2 on usage errors. The row format is
 * deterministic (table order, no timing), so diffing two runs is
 * meaningful.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "arch/decoder.h"
#include "coverage/coverage.h"
#include "explore/state_explorer.h"
#include "support/logging.h"
#include "testgen/baseline.h"

using namespace pokeemu;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --max-paths N             per-instruction path cap "
                 "(default 16)\n"
                 "  --max-paths-rep N         cap for rep-prefixed "
                 "instructions (default 8)\n"
                 "  --schedule P              pathcover, frontier "
                 "(default) or default\n"
                 "  --policy P                alias for --schedule\n"
                 "  --seed N                  exploration seed\n"
                 "  --fail-under-blocks PCT   fail when aggregate block "
                 "coverage < PCT\n"
                 "  --fail-under-edges PCT    fail when aggregate edge "
                 "coverage < PCT\n"
                 "  --require-single-path-full  fail when a single-path "
                 "instruction\n"
                 "                            leaves a reachable block "
                 "uncovered\n"
                 "  --quiet                   summary only, no per-insn "
                 "rows\n",
                 argv0);
}

bool
parse_u64(const char *s, u64 &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    u64 max_paths = 16;
    u64 max_paths_rep = 8;
    u64 seed = 1;
    auto schedule = coverage::SchedulePolicy::UncoveredEdgeFirst;
    double fail_under_blocks = -1;
    double fail_under_edges = -1;
    bool require_single_path_full = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        u64 n = 0;
        if (arg == "--max-paths") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --max-paths\n");
                return 2;
            }
            max_paths = n;
        } else if (arg == "--max-paths-rep") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --max-paths-rep\n");
                return 2;
            }
            max_paths_rep = n;
        } else if (arg == "--schedule" || arg == "--policy") {
            const std::string policy = value();
            if (policy == "pathcover") {
                schedule = coverage::SchedulePolicy::PathCoverFirst;
            } else if (policy == "frontier") {
                schedule = coverage::SchedulePolicy::UncoveredEdgeFirst;
            } else if (policy == "default") {
                schedule = coverage::SchedulePolicy::DefaultOrder;
            } else {
                std::fprintf(stderr,
                             "bad %s (want pathcover|frontier|"
                             "default)\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg == "--seed") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --seed\n");
                return 2;
            }
            seed = n;
        } else if (arg == "--fail-under-blocks") {
            fail_under_blocks = std::atof(value());
        } else if (arg == "--fail-under-edges") {
            fail_under_edges = std::atof(value());
        } else if (arg == "--require-single-path-full") {
            require_single_path_full = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // The pipeline's baseline machine state (stage-2 preconditions).
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    u64 covered_blocks = 0, total_blocks = 0;
    u64 covered_edges = 0, total_edges = 0;
    u64 explored = 0, skipped = 0, complete = 0;
    u64 truncated[coverage::kNumTruncationReasons] = {};
    u64 histogram[coverage::kNumCoverageBuckets] = {};
    u64 single_path_dark = 0;
    // (index, truncation) of every incomplete unit, for the summary's
    // why-incomplete listing (visible under --quiet too: cap-scaling
    // runs care exactly about the stragglers).
    std::vector<std::pair<int, coverage::TruncationReason>> incomplete;

    const auto &table = arch::insn_table();
    for (int index = 0; index < static_cast<int>(table.size());
         ++index) {
        const std::vector<u8> bytes = arch::canonical_encoding(index);
        arch::DecodedInsn insn;
        if (bytes.empty() ||
            arch::decode(bytes.data(), bytes.size(), insn) !=
                arch::DecodeStatus::Ok ||
            insn.table_index != index) {
            ++skipped;
            continue;
        }

        explore::StateExploreOptions options;
        options.max_paths = max_paths;
        options.seed = seed;
        options.schedule = schedule;
        options.minimize = false; // Coverage only; keep the sweep fast.
        if (insn.rep || insn.repne) {
            options.max_paths = std::min(max_paths, max_paths_rep);
            options.max_steps = 3000;
        }

        const explore::StateExploreResult result =
            explore_instruction(insn, spec, &summary, options);
        const auto &st = result.stats;
        ++explored;
        if (st.complete)
            ++complete;
        else
            incomplete.emplace_back(index, st.truncation);
        ++truncated[static_cast<unsigned>(st.truncation)];
        covered_blocks += st.covered_blocks;
        total_blocks += st.total_blocks;
        covered_edges += st.covered_edges;
        total_edges += st.total_edges;
        ++histogram[coverage::coverage_bucket(st.covered_blocks,
                                              st.total_blocks)];
        // A single-path instruction's one path must walk every
        // reachable block: control never forks, so the CFG is a chain
        // and anything dark would mean the trace or the CFG is wrong.
        const bool single_path_full =
            st.paths != 1 || st.covered_blocks == st.total_blocks;
        if (!single_path_full)
            ++single_path_dark;

        if (!quiet) {
            std::printf("insn %d (%s): paths %llu blocks %llu/%llu "
                        "edges %llu/%llu truncation %s%s\n",
                        index, table[index].mnemonic,
                        static_cast<unsigned long long>(st.paths),
                        static_cast<unsigned long long>(
                            st.covered_blocks),
                        static_cast<unsigned long long>(
                            st.total_blocks),
                        static_cast<unsigned long long>(
                            st.covered_edges),
                        static_cast<unsigned long long>(st.total_edges),
                        coverage::truncation_reason_name(st.truncation),
                        single_path_full ? "" : " UNCOVERED-BLOCKS");
        }
    }

    const auto pct = [](u64 covered, u64 total) {
        return total == 0 ? 100.0
                          : 100.0 * static_cast<double>(covered) /
                                static_cast<double>(total);
    };
    const double block_pct = pct(covered_blocks, total_blocks);
    const double edge_pct = pct(covered_edges, total_edges);
    std::printf("== coverage report (schedule %s, max-paths %llu) ==\n",
                coverage::schedule_policy_name(schedule),
                static_cast<unsigned long long>(max_paths));
    std::printf("instructions: %llu explored, %llu skipped "
                "(no canonical encoding), %llu complete\n",
                static_cast<unsigned long long>(explored),
                static_cast<unsigned long long>(skipped),
                static_cast<unsigned long long>(complete));
    std::printf("blocks: %llu/%llu (%.1f%%)\n",
                static_cast<unsigned long long>(covered_blocks),
                static_cast<unsigned long long>(total_blocks),
                block_pct);
    std::printf("edges: %llu/%llu (%.1f%%)\n",
                static_cast<unsigned long long>(covered_edges),
                static_cast<unsigned long long>(total_edges), edge_pct);
    std::printf("histogram:");
    for (unsigned b = 0; b < coverage::kNumCoverageBuckets; ++b) {
        std::printf(" %s=%llu", coverage::coverage_bucket_name(b),
                    static_cast<unsigned long long>(histogram[b]));
    }
    std::printf("\n");
    std::printf("truncation:");
    for (unsigned r = 1; r < coverage::kNumTruncationReasons; ++r) {
        std::printf(" %s=%llu",
                    coverage::truncation_reason_name(
                        static_cast<coverage::TruncationReason>(r)),
                    static_cast<unsigned long long>(truncated[r]));
    }
    std::printf("\n");
    for (const auto &[index, reason] : incomplete) {
        std::printf("incomplete: insn %d (%s) truncation %s\n", index,
                    table[index].mnemonic,
                    coverage::truncation_reason_name(reason));
    }

    int status = 0;
    if (fail_under_blocks >= 0 && block_pct < fail_under_blocks) {
        std::fprintf(stderr,
                     "FAIL: block coverage %.1f%% < %.1f%%\n",
                     block_pct, fail_under_blocks);
        status = 1;
    }
    if (fail_under_edges >= 0 && edge_pct < fail_under_edges) {
        std::fprintf(stderr, "FAIL: edge coverage %.1f%% < %.1f%%\n",
                     edge_pct, fail_under_edges);
        status = 1;
    }
    if (require_single_path_full && single_path_dark != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu single-path instructions left "
                     "reachable blocks uncovered\n",
                     static_cast<unsigned long long>(single_path_dark));
        status = 1;
    }
    return status;
}
