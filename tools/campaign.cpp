/**
 * @file
 * Sharded campaign CLI: run the PokeEMU pipeline partitioned across N
 * workers with time-sliced, resumable sessions, then print the merged
 * campaign report (which is byte-identical for any --shards value).
 *
 *   campaign --shards 4 --checkpoint-dir /tmp/camp --max-instructions 8
 *   campaign --shards 4 --checkpoint-dir /tmp/camp --resume
 *   campaign --shards 2 --time-slice 3,50 --checkpoint-dir /tmp/camp
 *
 * The deterministic report goes to stdout; wall clock, sessions and
 * shard accounting (layout-dependent by nature) go after it, marked as
 * such, so diffing reports across shard counts stays meaningful:
 * `campaign ... | sed '/^-- layout/,$d'` is stable.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "defects/defects.h"
#include "pokeemu/shard.h"
#include "support/logging.h"

using namespace pokeemu;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --shards N            worker count (default 1)\n"
                 "  --checkpoint-dir DIR  shard checkpoints + manifest\n"
                 "  --resume              continue a prior campaign\n"
                 "  --time-slice U[,T]    per-session quotas: U fresh\n"
                 "                        units and (optionally) T\n"
                 "                        fresh tests per shard\n"
                 "  --max-sessions N      stop each shard after N\n"
                 "                        sessions (simulates\n"
                 "                        interruption; resume later)\n"
                 "  --max-instructions N  cap the campaign workload\n"
                 "  --max-paths N         per-instruction path cap\n"
                 "  --schedule P          path-order policy: pathcover,\n"
                 "                        frontier (default) or default\n"
                 "  --opt M               IR optimizer: off (default),\n"
                 "                        on, or validated (prove each\n"
                 "                        unit's optimization with the\n"
                 "                        solver)\n"
                 "  --compiled M          compiled-semantics replay:\n"
                 "                        off (default), on, or\n"
                 "                        crosscheck (run handler and\n"
                 "                        interpreter, quarantine any\n"
                 "                        divergence)\n"
                 "  --timing M            cycle-fidelity model: off\n"
                 "                        (default) or on (charge\n"
                 "                        cycles on every backend and\n"
                 "                        cluster timing divergences)\n"
                 "  --coverage            per-instruction IR coverage\n"
                 "                        table after the report\n"
                 "  --seed N              exploration seed\n"
                 "  --bugs A,B,...        seed these catalogue bugs\n"
                 "                        into the Lo-Fi backend\n"
                 "                        (--list-bugs for names)\n"
                 "  --list-bugs           print seedable bug names\n"
                 "  --sequential          run shards in one thread\n"
                 "  --verbose             info-level logging\n",
                 argv0);
}

/** Seedable bugs = behavioral catalogue entries (the misbehaviour
 *  classes are driven by the defect matrix, not this CLI). */
void
list_bugs(std::FILE *out)
{
    for (const defects::DefectSpec &d : defects::catalogue()) {
        if (d.kind != defects::DefectKind::Behavioral)
            continue;
        std::fprintf(out, "  %-24s %s\n", d.name.c_str(),
                     d.description.c_str());
    }
}

/** Resolve a comma-separated bug-name list against the catalogue;
 *  exits with the available names on an unknown one. */
lofi::BugConfig
parse_bugs(const std::string &list)
{
    lofi::BugConfig bugs = lofi::BugConfig::none();
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
        if (name.empty())
            continue;
        const defects::DefectSpec *d = defects::find_defect(name);
        if (d == nullptr || d->knob == nullptr) {
            std::fprintf(stderr,
                         "unknown bug '%s'; available bugs:\n",
                         name.c_str());
            list_bugs(stderr);
            std::exit(2);
        }
        bugs.*d->knob = true;
    }
    return bugs;
}

bool
parse_u64(const char *s, u64 &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    options.pipeline.max_paths_per_insn = 16;
    bool print_coverage = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        u64 n = 0;
        if (arg == "--shards") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --shards\n");
                return 2;
            }
            options.shards = static_cast<u32>(n);
        } else if (arg == "--checkpoint-dir") {
            options.checkpoint_dir = value();
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--time-slice") {
            const std::string slice = value();
            const std::size_t comma = slice.find(',');
            u64 units = 0;
            u64 tests = 0;
            if (!parse_u64(slice.substr(0, comma).c_str(), units) ||
                (comma != std::string::npos &&
                 !parse_u64(slice.substr(comma + 1).c_str(), tests))) {
                std::fprintf(stderr, "bad --time-slice (want U[,T])\n");
                return 2;
            }
            options.explore_slice_units = static_cast<u32>(units);
            options.execute_slice_tests = static_cast<u32>(tests);
        } else if (arg == "--max-sessions") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --max-sessions\n");
                return 2;
            }
            options.max_sessions_per_shard = static_cast<u32>(n);
        } else if (arg == "--max-instructions") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --max-instructions\n");
                return 2;
            }
            options.pipeline.max_instructions =
                static_cast<std::size_t>(n);
        } else if (arg == "--max-paths") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --max-paths\n");
                return 2;
            }
            options.pipeline.max_paths_per_insn = n;
        } else if (arg == "--schedule") {
            const std::string policy = value();
            if (policy == "pathcover") {
                options.pipeline.schedule =
                    coverage::SchedulePolicy::PathCoverFirst;
            } else if (policy == "frontier") {
                options.pipeline.schedule =
                    coverage::SchedulePolicy::UncoveredEdgeFirst;
            } else if (policy == "default") {
                options.pipeline.schedule =
                    coverage::SchedulePolicy::DefaultOrder;
            } else {
                std::fprintf(stderr,
                             "bad --schedule (want pathcover|frontier|"
                             "default)\n");
                return 2;
            }
        } else if (arg == "--opt") {
            const std::string mode = value();
            if (mode == "off") {
                options.pipeline.opt = analysis::OptMode::Off;
            } else if (mode == "on") {
                options.pipeline.opt = analysis::OptMode::On;
            } else if (mode == "validated") {
                options.pipeline.opt = analysis::OptMode::Validated;
            } else {
                std::fprintf(stderr,
                             "bad --opt (want off|on|validated)\n");
                return 2;
            }
        } else if (arg == "--compiled") {
            const std::string mode = value();
            if (mode == "off") {
                options.pipeline.compiled = hifi::CompiledExec::Off;
            } else if (mode == "on") {
                options.pipeline.compiled = hifi::CompiledExec::On;
            } else if (mode == "crosscheck") {
                options.pipeline.compiled =
                    hifi::CompiledExec::CrossCheck;
            } else {
                std::fprintf(
                    stderr, "bad --compiled (want off|on|crosscheck)\n");
                return 2;
            }
        } else if (arg == "--timing") {
            const std::string mode = value();
            if (mode == "off") {
                options.pipeline.timing = false;
            } else if (mode == "on") {
                options.pipeline.timing = true;
            } else {
                std::fprintf(stderr, "bad --timing (want off|on)\n");
                return 2;
            }
        } else if (arg == "--coverage") {
            print_coverage = true;
        } else if (arg == "--seed") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --seed\n");
                return 2;
            }
            options.pipeline.seed = n;
        } else if (arg == "--bugs") {
            options.pipeline.bugs = parse_bugs(value());
        } else if (arg == "--list-bugs") {
            list_bugs(stdout);
            return 0;
        } else if (arg == "--sequential") {
            options.parallel = false;
        } else if (arg == "--verbose") {
            set_log_level(LogLevel::Info);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    try {
        const CampaignResult result = run_campaign(options);
        std::fputs(result.report().c_str(), stdout);
        if (print_coverage) {
            // Part of the deterministic output: merged_checkpoint rows
            // are in campaign order with campaign-global ids, so this
            // table is byte-identical for any --shards value too.
            std::printf("-- coverage (per instruction)\n");
            for (const CheckpointUnit &u :
                 result.merged_checkpoint.explored) {
                std::printf(
                    "insn %d (%s): blocks %llu/%llu edges %llu/%llu "
                    "truncation %s\n",
                    u.table_index,
                    arch::insn_table()[u.table_index].mnemonic,
                    static_cast<unsigned long long>(u.covered_blocks),
                    static_cast<unsigned long long>(u.total_blocks),
                    static_cast<unsigned long long>(u.covered_edges),
                    static_cast<unsigned long long>(u.total_edges),
                    coverage::truncation_reason_name(u.truncation));
            }
        }
        // Layout-dependent accounting, deliberately outside report().
        std::printf("-- layout (not part of the deterministic report)\n");
        std::printf("shards: %u (%s), sessions: %llu, complete: %s\n",
                    result.shards,
                    options.parallel ? "parallel" : "sequential",
                    static_cast<unsigned long long>(result.sessions),
                    result.complete ? "yes" : "no");
        std::printf("wall: %.3fs\n", result.wall_seconds);
        for (const ShardOutcome &o : result.outcomes) {
            std::printf("shard %u: %u sessions, %llu units, %llu "
                        "tests executed, %s\n",
                        o.shard, o.sessions,
                        static_cast<unsigned long long>(
                            o.stats.instructions_explored),
                        static_cast<unsigned long long>(
                            o.stats.tests_executed),
                        o.complete ? "complete" : "preempted");
        }
        return result.complete ? 0 : 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "campaign failed: %s\n", e.what());
        return 1;
    }
}
