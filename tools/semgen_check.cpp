/**
 * @file
 * semgen_check: per-instruction differential test of every compiled
 * handler against the IR interpreter (the ground truth it was
 * generated from).
 *
 * For each compiled unit, both executions start from byte-identical
 * worlds — a hifi::ReplayMemory seeded per (unit, state) whose
 * deterministic background pattern stands in for a random initial
 * machine state, with random immediate/displacement parameter values
 * poked for generic units — and must agree exactly on RunResult
 * (status, halt code, retired-statement count), the store journal,
 * and thrown-exception outcomes. Any divergence prints the unit and
 * state and exits nonzero, failing the semgen_crosscheck_all ctest.
 */
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "hifi/compiled.h"

using namespace pokeemu;
using hifi::CompiledUnit;
using hifi::ReplayMemory;

namespace {

/** splitmix64: the deterministic per-(unit, state) seed stream. */
u64
mix(u64 z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** One execution's observable behaviour. */
struct Outcome
{
    bool threw = false;
    std::string error;
    ir::RunResult result;
    std::vector<ReplayMemory::StoreRec> journal;

    bool
    operator==(const Outcome &o) const
    {
        if (threw != o.threw)
            return false;
        if (threw)
            return error == o.error;
        return result.status == o.result.status &&
            result.halt_code == o.result.halt_code &&
            result.steps == o.result.steps && journal == o.journal;
    }
};

constexpr u64 kMaxSteps = 1u << 14;

Outcome
run_interpreter(const CompiledUnit &unit, ReplayMemory &memory)
{
    Outcome out;
    try {
        out.result = ir::run_concrete(unit.program, memory, kMaxSteps);
    } catch (const std::exception &e) {
        out.threw = true;
        out.error = e.what();
    }
    out.journal = memory.journal();
    return out;
}

Outcome
run_handler(hifi::CompiledHandler handler, ReplayMemory &memory)
{
    Outcome out;
    try {
        out.result = handler(memory, kMaxSteps);
    } catch (const std::exception &e) {
        out.threw = true;
        out.error = e.what();
    }
    out.journal = memory.journal();
    return out;
}

void
describe(const Outcome &o)
{
    if (o.threw) {
        std::printf("    threw: %s\n", o.error.c_str());
        return;
    }
    std::printf("    status=%d halt_code=0x%x steps=%llu stores=%zu\n",
                static_cast<int>(o.result.status), o.result.halt_code,
                static_cast<unsigned long long>(o.result.steps),
                o.journal.size());
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--states N] [--seed S] [--only M] [--quiet]\n"
        "  --states N  random initial states per unit (default 256)\n"
        "  --seed S    base seed (default 1)\n"
        "  --only M    restrict to mnemonic or table index M\n"
        "  --quiet     summary line only\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 states = 256;
    u64 seed = 1;
    std::string only;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--states" && i + 1 < argc) {
            states = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--only" && i + 1 < argc) {
            only = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    const auto &units = hifi::compiled_units();
    const hifi::CompiledTable &table = hifi::compiled_table();
    if (table.num_entries != units.size()) {
        std::fprintf(stderr,
                     "semgen_check: table has %zu entries, %zu units "
                     "built — regenerate\n",
                     table.num_entries, units.size());
        return 1;
    }
    if (table.semantics_hash != hifi::compiled_expected_hash()) {
        std::fprintf(stderr,
                     "semgen_check: stale table (hash mismatch) — "
                     "regenerate\n");
        return 1;
    }

    u64 units_checked = 0;
    u64 runs = 0;
    u64 mismatches = 0;
    for (std::size_t u = 0; u < units.size(); ++u) {
        const CompiledUnit &unit = units[u];
        const char *name = unit.insn.desc->mnemonic;
        if (!only.empty() && only != name &&
            only != std::to_string(unit.insn.table_index)) {
            continue;
        }
        ++units_checked;
        for (u64 s = 0; s < states; ++s) {
            const u64 base = mix(seed ^ mix(u * 8192 + s));
            // Generic units read value parameters from the param
            // block; vary them independently of the background.
            const u32 imm = unit.params_ok
                ? static_cast<u32>(mix(base ^ 1))
                : unit.insn.imm;
            const u32 disp = unit.params_ok
                ? static_cast<u32>(mix(base ^ 2))
                : unit.insn.disp;

            ReplayMemory ref_mem(base);
            ref_mem.poke(hifi::param_block::kImm, 4, imm);
            ref_mem.poke(hifi::param_block::kDisp, 4, disp);
            const Outcome ref = run_interpreter(unit, ref_mem);

            ReplayMemory gen_mem(base);
            gen_mem.poke(hifi::param_block::kImm, 4, imm);
            gen_mem.poke(hifi::param_block::kDisp, 4, disp);
            const Outcome gen =
                run_handler(table.entries[u].handler, gen_mem);

            ++runs;
            if (ref == gen)
                continue;
            ++mismatches;
            if (!quiet) {
                std::printf("MISMATCH unit %zu (%s%s, row %d) state "
                            "%llu imm=0x%x disp=0x%x\n  interpreter:\n",
                            u, name, unit.variant ? ", variant" : "",
                            unit.insn.table_index,
                            static_cast<unsigned long long>(s), imm,
                            disp);
                describe(ref);
                std::printf("  handler:\n");
                describe(gen);
            }
        }
    }

    std::printf("semgen_check: %llu units, %llu runs, %llu mismatches\n",
                static_cast<unsigned long long>(units_checked),
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(mismatches));
    if (units_checked == 0) {
        std::fprintf(stderr, "semgen_check: no unit matched --only\n");
        return 1;
    }
    return mismatches == 0 ? 0 : 1;
}
