/**
 * @file
 * timing_crosscheck: proves the cycle-fidelity model is one model, no
 * matter who consumes it (DESIGN.md §16).
 *
 * Two properties, over every compiled unit:
 *
 *  1. The semgen-emitted cost table matches a fresh derivation from
 *     the unit's IR program — the table compiled into the binary is
 *     exactly what derive_cost() produces today (the FNV staleness
 *     hash also folds these triples, so a drift fails the build's
 *     stale-table check; this tool localizes which unit drifted).
 *  2. Interpreted and compiled execution charge identical cycles for
 *     identical retirements: both dispatch paths resolve the same
 *     (table row, operand form) cost and the same fault surcharge, so
 *     for byte-identical seeded worlds their per-retirement charges
 *     must be equal. Runs each unit from N seeded states through the
 *     IR interpreter and the generated handler and compares the
 *     charge each outcome implies.
 *
 * Any mismatch prints the unit and exits nonzero, failing the
 * timing_crosscheck_all ctest.
 */
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "hifi/compiled.h"
#include "hifi/semantics.h"
#include "timing/cost_model.h"

using namespace pokeemu;
using hifi::CompiledUnit;
using hifi::ReplayMemory;

namespace {

/** splitmix64: the deterministic per-(unit, state) seed stream. */
u64
mix(u64 z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr u64 kMaxSteps = 1u << 14;

struct Outcome
{
    bool threw = false;
    ir::RunResult result;
};

Outcome
run_one(const CompiledUnit &unit, hifi::CompiledHandler handler,
        ReplayMemory &memory)
{
    Outcome out;
    try {
        out.result = handler != nullptr
            ? handler(memory, kMaxSteps)
            : ir::run_concrete(unit.program, memory, kMaxSteps);
    } catch (const std::exception &) {
        out.threw = true;
    }
    return out;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--states N] [--seed S] [--quiet]\n"
        "  --states N  seeded initial states per unit (default 16)\n"
        "  --seed S    base seed (default 1)\n"
        "  --quiet     summary line only\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 states = 16;
    u64 seed = 1;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--states" && i + 1 < argc) {
            states = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    const auto &units = hifi::compiled_units();
    const hifi::CompiledTable &table = hifi::compiled_table();
    const hifi::CompiledCostTable &costs = hifi::compiled_cost_table();
    if (table.num_entries != units.size() ||
        costs.num != units.size()) {
        std::fprintf(stderr,
                     "timing_crosscheck: table has %zu entries, %zu "
                     "cost rows, %zu units built — regenerate\n",
                     table.num_entries, costs.num, units.size());
        return 1;
    }
    if (table.semantics_hash != hifi::compiled_expected_hash()) {
        std::fprintf(stderr,
                     "timing_crosscheck: stale table (hash mismatch) "
                     "— regenerate\n");
        return 1;
    }

    u64 runs = 0;
    u64 cost_mismatches = 0;
    u64 charge_mismatches = 0;
    for (std::size_t u = 0; u < units.size(); ++u) {
        const CompiledUnit &unit = units[u];
        const char *name = unit.insn.desc->mnemonic;

        // Property 1: emitted cost triple == fresh derivation.
        const timing::UnitCost derived = timing::derive_cost(unit.program);
        if (!(costs.costs[u] == derived)) {
            ++cost_mismatches;
            if (!quiet) {
                std::printf(
                    "COST MISMATCH unit %zu (%s, row %d): emitted "
                    "{%llu,%llu,%llu} derived {%llu,%llu,%llu}\n",
                    u, name, unit.insn.table_index,
                    static_cast<unsigned long long>(costs.costs[u].base),
                    static_cast<unsigned long long>(
                        costs.costs[u].mem_accesses),
                    static_cast<unsigned long long>(
                        costs.costs[u].fault_extra),
                    static_cast<unsigned long long>(derived.base),
                    static_cast<unsigned long long>(
                        derived.mem_accesses),
                    static_cast<unsigned long long>(
                        derived.fault_extra));
            }
        }

        // Property 2: equal per-retirement charges, interpreted vs
        // compiled, from byte-identical seeded worlds. Both paths key
        // the model by (row, operand form), so the only way charges
        // can differ is a halt-code disagreement — surfaced here as a
        // charge mismatch (and by semgen_check as a semantic one).
        const hifi::CompiledEntry &entry = table.entries[u];
        const bool mem_form = entry.shape.has_modrm &&
            (entry.shape.modrm >> 6) != 3;
        const timing::UnitCost &cost = timing::cost_model().cost_for(
            unit.insn.table_index, mem_form);
        for (u64 s = 0; s < states; ++s) {
            const u64 base = mix(seed ^ mix(u * 8192 + s));
            const u32 imm = unit.params_ok
                ? static_cast<u32>(mix(base ^ 1))
                : unit.insn.imm;
            const u32 disp = unit.params_ok
                ? static_cast<u32>(mix(base ^ 2))
                : unit.insn.disp;

            ReplayMemory ref_mem(base);
            ref_mem.poke(hifi::param_block::kImm, 4, imm);
            ref_mem.poke(hifi::param_block::kDisp, 4, disp);
            const Outcome ref = run_one(unit, nullptr, ref_mem);

            ReplayMemory gen_mem(base);
            gen_mem.poke(hifi::param_block::kImm, 4, imm);
            gen_mem.poke(hifi::param_block::kDisp, 4, disp);
            const Outcome gen = run_one(unit, entry.handler, gen_mem);

            ++runs;
            if (ref.threw || gen.threw) {
                // A thrown run retires nothing and charges nothing on
                // either path; disagreement in throwing itself is
                // semgen_check's department.
                if (ref.threw != gen.threw)
                    ++charge_mismatches;
                continue;
            }
            const u64 ref_charge = cost.charge(
                (ref.result.halt_code & hifi::kHaltException) != 0);
            const u64 gen_charge = cost.charge(
                (gen.result.halt_code & hifi::kHaltException) != 0);
            if (ref_charge == gen_charge)
                continue;
            ++charge_mismatches;
            if (!quiet) {
                std::printf(
                    "CHARGE MISMATCH unit %zu (%s, row %d) state %llu: "
                    "interpreter %llu cycles (halt 0x%x), handler %llu "
                    "cycles (halt 0x%x)\n",
                    u, name, unit.insn.table_index,
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(ref_charge),
                    ref.result.halt_code,
                    static_cast<unsigned long long>(gen_charge),
                    gen.result.halt_code);
            }
        }
    }

    std::printf("timing_crosscheck: %zu units, %llu runs, %llu cost "
                "mismatches, %llu charge mismatches\n",
                units.size(), static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(cost_mismatches),
                static_cast<unsigned long long>(charge_mismatches));
    return (cost_mismatches == 0 && charge_mismatches == 0) ? 0 : 1;
}
