/**
 * @file
 * semgen: build-time compiler from instruction semantics programs to
 * native C++ handlers (hifi/compiled.h) — the WinUAE gencpu shape,
 * table -> generator -> handlers.cpp.
 *
 * For every compiled unit (hifi::build_compiled_units: each row's
 * canonical encoding plus [disp32] memory-form variants, built with
 * generic value parameters and the IR optimizer on), the generator
 * lowers the program to one C++ function that mirrors
 * ir::run_concrete exactly: IR temporaries become a local array,
 * expression DAGs become CSE'd locals, control flow becomes gotos,
 * memory stays behind ir::ConcreteMemory, and RunResult::steps counts
 * retired IR statements. It finally emits the dispatch table
 * (compiled_table) stamped with compiled_expected_hash() so a stale
 * generated file is detected at runtime.
 *
 * Diagnostics: --list (unit inventory), --only <mnemonic|index>
 * (restrict emission/listing), --json (machine-readable summary).
 */
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hifi/compiled.h"
#include "ir/printer.h"

using namespace pokeemu;
using hifi::CompiledUnit;

namespace {

std::string
hex64(u64 v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxull",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Wrap @p s in a truncation to @p width bits (no-op at 64). */
std::string
masked(const std::string &s, unsigned width)
{
    if (width >= 64)
        return s;
    return "(" + s + ") & " + hex64(mask_bits(width));
}

/**
 * Per-statement expression compiler: walks the hash-consed DAG,
 * emitting one `const u64 eN = ...;` per distinct interior node
 * (pointer-identity CSE, like the interpreter's per-statement memo)
 * and returning the C++ expression naming the node's value. The
 * emitted arithmetic mirrors fold_binop / eval_expr exactly; every
 * value is kept truncated to its node width, the interpreter's
 * invariant.
 */
class ExprCompiler
{
  public:
    explicit ExprCompiler(std::string *out) : out_(out) {}

    std::string compile(const ir::ExprRef &e) { return walk(e); }

  private:
    std::string bind(const ir::Expr *node, const std::string &expr)
    {
        const std::string name = "e" + std::to_string(next_++);
        *out_ += "            const u64 " + name + " = " + expr + ";\n";
        memo_[node] = name;
        return name;
    }

    std::string walk(const ir::ExprRef &e)
    {
        auto it = memo_.find(e.get());
        if (it != memo_.end())
            return it->second;
        using ir::ExprKind;
        switch (e->kind()) {
          case ExprKind::Const: {
            // Literal; no local needed (factories pre-truncate).
            const std::string lit = hex64(e->value());
            memo_[e.get()] = lit;
            return lit;
          }
          case ExprKind::Temp: {
            const std::string name =
                "t[" + std::to_string(e->temp_id()) + "]";
            memo_[e.get()] = name;
            return name;
          }
          case ExprKind::Var:
            throw std::logic_error(
                "semgen: free symbolic variable '" + e->name() +
                "' in a compiled program");
          case ExprKind::UnOp: {
            const std::string a = walk(e->a());
            const std::string body = e->unop() == ir::UnOpKind::Not
                ? "~" + a
                : "~" + a + " + 1";
            return bind(e.get(), masked(body, e->width()));
          }
          case ExprKind::BinOp:
            return bind(e.get(), binop(e));
          case ExprKind::Cast: {
            const std::string a = walk(e->a());
            switch (e->cast()) {
              case ir::CastKind::ZExt:
                // Values are pre-truncated: zext is an alias.
                memo_[e.get()] = a;
                return a;
              case ir::CastKind::SExt:
                return bind(e.get(),
                            masked("static_cast<u64>(sign_extend(" + a +
                                       ", " +
                                       std::to_string(e->a()->width()) +
                                       "))",
                                   e->width()));
              case ir::CastKind::Extract:
                return bind(
                    e.get(),
                    masked(a + " >> " +
                               std::to_string(e->extract_lo()),
                           e->width()));
            }
            throw std::logic_error("semgen: bad cast");
          }
          case ExprKind::Ite: {
            const std::string c = walk(e->a());
            const std::string t = walk(e->b());
            const std::string f = walk(e->c());
            // Eager evaluation of both arms is safe: IR expressions
            // are total (guarded shifts/division, no memory).
            return bind(e.get(),
                        c + " != 0 ? " + t + " : " + f);
          }
        }
        throw std::logic_error("semgen: bad expr kind");
    }

    std::string binop(const ir::ExprRef &e)
    {
        using ir::BinOpKind;
        const std::string a = walk(e->a());
        const std::string b = walk(e->b());
        const unsigned w = e->a()->width();
        const std::string ws = std::to_string(w);
        switch (e->binop()) {
          case BinOpKind::Add:
            return masked(a + " + " + b, w);
          case BinOpKind::Sub:
            return masked(a + " - " + b, w);
          case BinOpKind::Mul:
            return masked(a + " * " + b, w);
          case BinOpKind::UDiv:
            return b + " == 0 ? " + hex64(mask_bits(w)) + " : " + a +
                " / " + b;
          case BinOpKind::URem:
            return b + " == 0 ? " + a + " : " + a + " % " + b;
          case BinOpKind::SDiv:
            return "sem_sdiv(" + a + ", " + b + ", " + ws + ")";
          case BinOpKind::SRem:
            return "sem_srem(" + a + ", " + b + ", " + ws + ")";
          case BinOpKind::And:
            return a + " & " + b;
          case BinOpKind::Or:
            return a + " | " + b;
          case BinOpKind::Xor:
            return a + " ^ " + b;
          case BinOpKind::Shl:
            return b + " >= " + ws + " ? 0 : " +
                masked("(" + a + ") << " + b, w);
          case BinOpKind::LShr:
            return b + " >= " + ws + " ? 0 : " + a + " >> " + b;
          case BinOpKind::AShr:
            return "sem_ashr(" + a + ", " + b + ", " + ws + ")";
          case BinOpKind::Eq:
            return "static_cast<u64>(" + a + " == " + b + ")";
          case BinOpKind::Ne:
            return "static_cast<u64>(" + a + " != " + b + ")";
          case BinOpKind::ULt:
            return "static_cast<u64>(" + a + " < " + b + ")";
          case BinOpKind::ULe:
            return "static_cast<u64>(" + a + " <= " + b + ")";
          case BinOpKind::SLt:
            return "static_cast<u64>(sign_extend(" + a + ", " + ws +
                ") < sign_extend(" + b + ", " + ws + "))";
          case BinOpKind::SLe:
            return "static_cast<u64>(sign_extend(" + a + ", " + ws +
                ") <= sign_extend(" + b + ", " + ws + "))";
          case BinOpKind::Concat:
            // am < 2^w, so (am << bw) | bm already fits w + bw bits.
            return "((" + a + ") << " +
                std::to_string(e->b()->width()) + ") | " + b;
        }
        throw std::logic_error("semgen: bad binop");
    }

    std::string *out_;
    std::map<const ir::Expr *, std::string> memo_;
    unsigned next_ = 0;
};

/** Statement indices that are jump targets (need a C++ label). */
std::set<u32>
jump_targets(const ir::Program &p)
{
    std::set<u32> targets;
    for (const ir::Stmt &s : p.stmts) {
        if (s.kind == ir::StmtKind::CJmp) {
            targets.insert(p.label_pos[s.target_true]);
            targets.insert(p.label_pos[s.target_false]);
        } else if (s.kind == ir::StmtKind::Jmp) {
            targets.insert(p.label_pos[s.target_true]);
        }
    }
    return targets;
}

/** Emit one handler function for @p unit as h_<index>. */
void
emit_handler(std::string &out, const CompiledUnit &unit, std::size_t index)
{
    const ir::Program &p = unit.program;
    const std::set<u32> targets = jump_targets(p);

    out += "// unit " + std::to_string(index) + ": " + p.name +
        (unit.variant ? " [variant form]" : "") + ", " +
        std::to_string(p.stmts.size()) + " stmts\n";
    out += "ir::RunResult\nh_" + std::to_string(index) +
        "(ir::ConcreteMemory &m, u64 max_steps)\n{\n";
    out += "    (void)m;\n";
    out += "    ir::RunResult r;\n";
    out += "    u64 steps = 0;\n";
    if (p.num_temps() > 0) {
        out += "    [[maybe_unused]] u64 t[" +
            std::to_string(p.num_temps()) + "] = {};\n";
    }

    for (u32 si = 0; si < p.stmts.size(); ++si) {
        const ir::Stmt &s = p.stmts[si];
        if (targets.count(si))
            out += "L" + std::to_string(si) + ":\n";
        // The interpreter checks the budget before every statement and
        // counts every retired statement, Comments included.
        out += "    if (steps >= max_steps) { r.steps = steps; "
               "return r; }\n";
        out += "    ++steps;\n";

        std::string body;
        ExprCompiler ec(&body);
        std::string action;
        switch (s.kind) {
          case ir::StmtKind::Assign:
            action = "t[" + std::to_string(s.temp) + "] = " +
                ec.compile(s.expr) + ";";
            break;
          case ir::StmtKind::Load:
            action = "t[" + std::to_string(s.temp) +
                "] = m.load(static_cast<u32>(" + ec.compile(s.addr) +
                "), " + std::to_string(s.size) + ");";
            break;
          case ir::StmtKind::Store: {
            const std::string addr = ec.compile(s.addr);
            const std::string value = ec.compile(s.expr);
            action = "m.store(static_cast<u32>(" + addr + "), " +
                std::to_string(s.size) + ", " + value + ");";
            break;
          }
          case ir::StmtKind::CJmp:
            action = "if (" + ec.compile(s.expr) + " != 0) goto L" +
                std::to_string(p.label_pos[s.target_true]) +
                "; else goto L" +
                std::to_string(p.label_pos[s.target_false]) + ";";
            break;
          case ir::StmtKind::Jmp:
            action = "goto L" +
                std::to_string(p.label_pos[s.target_true]) + ";";
            break;
          case ir::StmtKind::Assume:
            action = "if (" + ec.compile(s.expr) +
                " == 0) { r.status = ir::RunStatus::AssumeFailed; "
                "r.steps = steps; return r; }";
            break;
          case ir::StmtKind::Halt:
            action = "r.status = ir::RunStatus::Halted; "
                     "r.halt_code = static_cast<u32>(" +
                ec.compile(s.expr) +
                "); r.steps = steps; return r;";
            break;
          case ir::StmtKind::Comment:
            break;
        }
        if (!body.empty() || !action.empty()) {
            // Braced so locals never cross a label (goto-safe) and
            // CSE names reset per statement.
            out += "    {   // [" + std::to_string(si) + "]\n";
            out += body;
            if (!action.empty())
                out += "            " + action + "\n";
            out += "    }\n";
        }
    }
    // Mirrors the interpreter's fell-off-program-end panic: every
    // verified program halts on all paths, so this is unreachable.
    out += "    __builtin_trap();\n";
    out += "}\n\n";
}

std::string
shape_initializer(const CompiledUnit &unit)
{
    const arch::DecodedInsn &i = unit.insn;
    auto flag = [](bool b) { return b ? "true" : "false"; };
    std::string s = "{";
    s += std::to_string(i.table_index) + ", ";
    s += std::to_string(i.length) + ", ";
    s += std::string(flag(i.lock)) + ", " + flag(i.rep) + ", " +
        flag(i.repne) + ", ";
    s += std::to_string(static_cast<int>(i.seg_override)) + ", ";
    s += std::string(flag(i.has_modrm)) + ", " +
        std::to_string(i.modrm) + ", ";
    s += std::string(flag(i.has_sib)) + ", " + std::to_string(i.sib) +
        ", ";
    s += std::string(unit.params_ok ? "true" : "false") + ", ";
    s += std::to_string(i.imm) + "u, " + std::to_string(i.disp) +
        "u, " + std::to_string(i.imm_sel) + "}";
    return s;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: semgen [-o <out.cpp>] [--list] [--json] "
        "[--only <mnemonic|index>]\n"
        "  default: generate the compiled-handler table to -o (or "
        "stdout)\n"
        "  --list   print the unit inventory instead of generating\n"
        "  --json   print a machine-readable summary instead\n"
        "  --only   restrict to units matching a mnemonic or table "
        "index\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    bool list = false;
    bool json = false;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--only" && i + 1 < argc) {
            only = argv[++i];
        } else {
            return usage();
        }
    }

    std::vector<CompiledUnit> units = hifi::build_compiled_units();
    if (!only.empty()) {
        std::vector<CompiledUnit> kept;
        for (CompiledUnit &unit : units) {
            const bool index_match =
                only == std::to_string(unit.insn.table_index);
            const bool name_match =
                unit.insn.desc && only == unit.insn.desc->mnemonic;
            if (index_match || name_match)
                kept.push_back(std::move(unit));
        }
        if (kept.empty()) {
            std::fprintf(stderr, "semgen: no unit matches '%s'\n",
                         only.c_str());
            return 1;
        }
        units = std::move(kept);
    }

    std::size_t total_stmts = 0;
    for (const CompiledUnit &unit : units)
        total_stmts += unit.program.stmts.size();

    if (list) {
        for (std::size_t i = 0; i < units.size(); ++i) {
            const CompiledUnit &unit = units[i];
            std::printf("%4zu  row %3d  %-12s %-8s %s%zu stmts\n", i,
                        unit.insn.table_index,
                        unit.insn.desc->mnemonic,
                        unit.params_ok ? "generic" : "special",
                        unit.variant ? "[variant] " : "",
                        unit.program.stmts.size());
        }
        std::printf("%zu units, %zu statements\n", units.size(),
                    total_stmts);
        return 0;
    }
    if (json) {
        std::printf("{\n");
        std::printf("  \"units\": %zu,\n", units.size());
        std::printf("  \"rows\": %zu,\n", arch::insn_table().size());
        std::printf("  \"total_stmts\": %zu,\n", total_stmts);
        std::printf("  \"semantics_hash\": \"%s\"\n",
                    hex64(hifi::compiled_expected_hash()).c_str());
        std::printf("}\n");
        return 0;
    }

    // --- Generate. ---
    std::string out;
    out.reserve(1u << 22);
    out +=
        "// Generated by tools/semgen — DO NOT EDIT.\n"
        "// One native handler per compiled semantics unit; mirrors\n"
        "// ir::run_concrete statement-for-statement (including\n"
        "// RunResult::steps).\n"
        "#include \"hifi/compiled.h\"\n"
        "\n"
        "namespace pokeemu::hifi {\n"
        "\n"
        "namespace {\n"
        "\n"
        "// fold_binop mirrors for the operators whose C++ lowering\n"
        "// needs guards (division overflow, shift >= width).\n"
        "[[maybe_unused]] inline u64\n"
        "sem_sdiv(u64 a, u64 b, unsigned w)\n"
        "{\n"
        "    if (b == 0)\n"
        "        return mask_bits(w);\n"
        "    const s64 sa = sign_extend(a, w);\n"
        "    const s64 sb = sign_extend(b, w);\n"
        "    if (sb == -1 && sa == sign_extend(u64{1} << (w - 1), w))\n"
        "        return truncate(static_cast<u64>(sa), w);\n"
        "    return truncate(static_cast<u64>(sa / sb), w);\n"
        "}\n"
        "\n"
        "[[maybe_unused]] inline u64\n"
        "sem_srem(u64 a, u64 b, unsigned w)\n"
        "{\n"
        "    if (b == 0)\n"
        "        return a;\n"
        "    const s64 sa = sign_extend(a, w);\n"
        "    const s64 sb = sign_extend(b, w);\n"
        "    if (sb == -1)\n"
        "        return 0;\n"
        "    return truncate(static_cast<u64>(sa % sb), w);\n"
        "}\n"
        "\n"
        "[[maybe_unused]] inline u64\n"
        "sem_ashr(u64 a, u64 b, unsigned w)\n"
        "{\n"
        "    const s64 sa = sign_extend(a, w);\n"
        "    const u64 sh = b >= w ? w - 1 : b;\n"
        "    return truncate(static_cast<u64>(sa >> sh), w);\n"
        "}\n"
        "\n";

    for (std::size_t i = 0; i < units.size(); ++i)
        emit_handler(out, units[i], i);

    // Dispatch table: entries in unit order (grouped by row because
    // build order is row-major), plus row offsets.
    out += "const CompiledEntry g_entries[] = {\n";
    for (std::size_t i = 0; i < units.size(); ++i) {
        out += "    {" + shape_initializer(units[i]) + ", &h_" +
            std::to_string(i) + "},\n";
    }
    out += "};\n\n";

    const std::size_t rows = arch::insn_table().size();
    std::vector<u32> row_begin(rows + 1, 0);
    {
        // Count then prefix-sum; units are already row-major.
        std::vector<u32> count(rows, 0);
        for (const CompiledUnit &unit : units)
            ++count[unit.insn.table_index];
        for (std::size_t r = 0; r < rows; ++r)
            row_begin[r + 1] = row_begin[r] + count[r];
    }
    out += "const u32 g_row_begin[] = {";
    for (std::size_t r = 0; r <= rows; ++r) {
        if (r % 16 == 0)
            out += "\n    ";
        out += std::to_string(row_begin[r]) + ", ";
    }
    out += "\n};\n\n";

    // Cycle-cost table (timing/cost_model.h), derived from the exact
    // programs compiled above; the triples are part of the staleness
    // hash, so editing the derivation rules without regenerating is
    // refused like any other semantics change.
    out += "const timing::UnitCost g_costs[] = {\n";
    for (std::size_t i = 0; i < units.size(); ++i) {
        const timing::UnitCost cost =
            timing::derive_cost(units[i].program);
        out += "    {" + std::to_string(cost.base) + ", " +
            std::to_string(cost.mem_accesses) + ", " +
            std::to_string(cost.fault_extra) + "},\n";
    }
    out += "};\n\n";
    out += "} // namespace\n\n";

    out += "const CompiledCostTable &\ncompiled_cost_table()\n{\n";
    out += "    static const CompiledCostTable table = {\n";
    out += "        g_costs,\n";
    out += "        " + std::to_string(units.size()) + ",\n";
    out += "    };\n";
    out += "    return table;\n";
    out += "}\n\n";

    out += "const CompiledTable &\ncompiled_table()\n{\n";
    out += "    static const CompiledTable table = {\n";
    out += "        g_entries,\n";
    out += "        " + std::to_string(units.size()) + ",\n";
    out += "        g_row_begin,\n";
    out += "        " + std::to_string(rows) + ",\n";
    out += "        " + hex64(hifi::compiled_expected_hash()) + ",\n";
    out += "    };\n";
    out += "    return table;\n";
    out += "}\n\n";
    out += "} // namespace pokeemu::hifi\n";

    if (out_path.empty()) {
        std::fwrite(out.data(), 1, out.size(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "semgen: cannot open %s\n",
                     out_path.c_str());
        return 1;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) ==
        out.size();
    std::fclose(f);
    if (!ok) {
        std::fprintf(stderr, "semgen: short write to %s\n",
                     out_path.c_str());
        return 1;
    }
    return 0;
}
