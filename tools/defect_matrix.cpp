/**
 * @file
 * Defect-matrix CLI: run the full pipeline against every
 * mutation-derived Lo-Fi variant backend in the defect catalogue and
 * score detection per defect class (src/defects/defects.h).
 *
 *   defect_matrix --list
 *   defect_matrix
 *   defect_matrix --variant wrmsr-truncated --shards 4
 *   defect_matrix --pairs 4 --json BENCH_defects.json
 *
 * Exit status: 0 when every detectable class was detected AND every
 * variant (including the crash/hang/corruption ones) was fully
 * contained; 3 otherwise; 2 on usage errors.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "defects/defects.h"
#include "support/logging.h"

using namespace pokeemu;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --list             print the defect catalogue\n"
                 "  --variant NAME     run only this variant (repeat\n"
                 "                     for several)\n"
                 "  --pairs N          add N seeded defect-pair\n"
                 "                     variants (default 0)\n"
                 "  --pair-seed N      seed for the pair plan\n"
                 "  --no-misbehavior   skip crash/hang/corruption\n"
                 "                     variants\n"
                 "  --shards N         shard count per campaign\n"
                 "  --max-paths N      per-instruction path cap\n"
                 "  --seed N           exploration seed\n"
                 "  --json FILE        also write machine-readable\n"
                 "                     results\n"
                 "  --verbose          info-level logging\n",
                 argv0);
}

bool
parse_u64(const char *s, u64 &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

void
print_catalogue()
{
    std::printf("defect catalogue (%zu entries):\n",
                defects::catalogue().size());
    for (const defects::DefectSpec &d : defects::catalogue()) {
        std::printf("  %-24s %-11s %-10s %s\n", d.name.c_str(),
                    defects::defect_kind_name(d.kind),
                    d.detectable ? "detectable" : "latent",
                    d.description.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    defects::MatrixOptions options;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        u64 n = 0;
        if (arg == "--list") {
            print_catalogue();
            return 0;
        } else if (arg == "--variant") {
            options.only.push_back(value());
        } else if (arg == "--pairs") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --pairs\n");
                return 2;
            }
            options.include_pairs = n > 0;
            options.pair_count = static_cast<std::size_t>(n);
        } else if (arg == "--pair-seed") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --pair-seed\n");
                return 2;
            }
            options.pair_seed = n;
        } else if (arg == "--no-misbehavior") {
            options.include_misbehavior = false;
        } else if (arg == "--shards") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --shards\n");
                return 2;
            }
            options.shards = static_cast<u32>(n);
        } else if (arg == "--max-paths") {
            if (!parse_u64(value(), n) || n == 0) {
                std::fprintf(stderr, "bad --max-paths\n");
                return 2;
            }
            options.max_paths = n;
        } else if (arg == "--seed") {
            if (!parse_u64(value(), n)) {
                std::fprintf(stderr, "bad --seed\n");
                return 2;
            }
            options.seed = n;
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--verbose") {
            set_log_level(LogLevel::Info);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // Unknown --variant names are a usage error, not an empty run.
    for (const std::string &name : options.only) {
        if (name.rfind("pair:", 0) == 0)
            continue;
        if (defects::find_defect(name) == nullptr) {
            std::fprintf(stderr, "unknown variant '%s'; known:\n",
                         name.c_str());
            for (const defects::DefectSpec &d : defects::catalogue())
                std::fprintf(stderr, "  %s\n", d.name.c_str());
            return 2;
        }
    }

    try {
        const defects::MatrixResult result =
            defects::run_matrix(options);
        std::fputs(defects::matrix_table(result).c_str(), stdout);

        if (!json_path.empty()) {
            std::FILE *f = std::fopen(json_path.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             json_path.c_str());
                return 1;
            }
            std::fprintf(f, "{\n");
            defects::write_matrix_json(f, result);
            std::fprintf(f, "\n}\n");
            std::fclose(f);
        }

        const bool ok =
            result.recall_complete() && result.containment_complete();
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: recall %llu/%llu, containment %s\n",
                         static_cast<unsigned long long>(
                             result.detectable_found),
                         static_cast<unsigned long long>(
                             result.detectable_total),
                         result.containment_complete() ? "ok"
                                                       : "violated");
        }
        return ok ? 0 : 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "defect matrix failed: %s\n", e.what());
        return 1;
    }
}
